package failure

import (
	"math"
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/topology"
)

func testNet(t *testing.T, n int) (*sim.Kernel, *mac.Network) {
	t.Helper()
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i%20) * 10, Y: float64(i/20) * 10}
	}
	f, err := topology.FromPositions(geom.Square(0, 0, 500), 40, pts)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	net, err := mac.New(k, f, energy.PaperModel(), mac.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return k, net
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if DefaultConfig().Fraction != 0.20 || DefaultConfig().Wave != 30*time.Second {
		t.Fatalf("paper defaults wrong: %+v", DefaultConfig())
	}
	bad := []Config{
		{Fraction: -0.1, Wave: time.Second},
		{Fraction: 1.0, Wave: time.Second},
		{Fraction: 0.2, Wave: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestWaveFailsRequestedFraction(t *testing.T) {
	k, net := testNet(t, 100)
	s, err := New(k, net, 100, Config{Fraction: 0.2, Wave: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	down := 0
	for i := 0; i < 100; i++ {
		if !net.On(topology.NodeID(i)) {
			down++
		}
	}
	if down != 20 {
		t.Fatalf("%d nodes down, want 20", down)
	}
	if len(s.Down()) != 20 {
		t.Fatalf("Down() reports %d", len(s.Down()))
	}
}

func TestWavesRotate(t *testing.T) {
	k, net := testNet(t, 100)
	s, err := New(k, net, 100, Config{Fraction: 0.2, Wave: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	first := map[topology.NodeID]bool{}
	for _, id := range s.Down() {
		first[id] = true
	}
	k.Run(15 * time.Second) // second wave at t=10
	if s.Waves() != 2 {
		t.Fatalf("Waves = %d, want 2", s.Waves())
	}
	// Still exactly 20 down, previous wave revived.
	down := 0
	same := 0
	for i := 0; i < 100; i++ {
		if !net.On(topology.NodeID(i)) {
			down++
			if first[topology.NodeID(i)] {
				same++
			}
		}
	}
	if down != 20 {
		t.Fatalf("%d down after second wave", down)
	}
	if same == 20 {
		t.Fatal("second wave identical to first; no rotation")
	}
}

func TestProtectedNodesNeverFail(t *testing.T) {
	k, net := testNet(t, 100)
	protect := []topology.NodeID{0, 1, 2, 3, 4}
	s, err := New(k, net, 100, Config{Fraction: 0.5, Wave: time.Second, Protect: protect})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	for wave := 0; wave < 20; wave++ {
		for _, id := range protect {
			if !net.On(id) {
				t.Fatalf("protected node %d failed in wave %d", id, wave)
			}
		}
		k.Run(k.Now() + time.Second)
	}
}

func TestUpTimeAccounting(t *testing.T) {
	k, net := testNet(t, 10)
	// Fail exactly half the nodes (protecting none) for the whole run by
	// using a wave as long as the run.
	s, err := New(k, net, 10, Config{Fraction: 0.5, Wave: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	k.Run(100 * time.Second)
	s.Finish()
	for i := 0; i < 10; i++ {
		up := net.Meter(topology.NodeID(i)).UpTime()
		if net.On(topology.NodeID(i)) {
			if up != 100*time.Second {
				t.Fatalf("on node %d up-time %v, want 100s", i, up)
			}
		} else if up != 0 {
			t.Fatalf("failed-at-zero node %d up-time %v, want 0", i, up)
		}
	}
}

func TestUpTimeSplitAcrossWaves(t *testing.T) {
	k, net := testNet(t, 100)
	s, err := New(k, net, 100, Config{Fraction: 0.2, Wave: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	k.Run(300 * time.Second)
	s.Finish()
	var total time.Duration
	for i := 0; i < 100; i++ {
		total += net.Meter(topology.NodeID(i)).UpTime()
	}
	// Expectation: 80% of 100 nodes × 300 s = 24000 s.
	want := 0.8 * 100 * 300
	got := total.Seconds()
	if math.Abs(got-want) > want*0.05 {
		t.Fatalf("total up-time %.0fs, want ≈%.0fs", got, want)
	}
}

func TestZeroFractionIsNoop(t *testing.T) {
	k, net := testNet(t, 10)
	s, err := New(k, net, 10, Config{Fraction: 0, Wave: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	k.Run(10 * time.Second)
	s.Finish()
	for i := 0; i < 10; i++ {
		if !net.On(topology.NodeID(i)) {
			t.Fatal("node failed under zero fraction")
		}
		if up := net.Meter(topology.NodeID(i)).UpTime(); up != 10*time.Second {
			t.Fatalf("up-time %v, want 10s", up)
		}
	}
	if s.Waves() != 0 {
		t.Fatal("waves scheduled under zero fraction")
	}
}

func TestKillIsPermanent(t *testing.T) {
	k, net := testNet(t, 100)
	s, err := New(k, net, 100, Config{Fraction: 0.2, Wave: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	s.Kill(7)
	s.Kill(7) // idempotent
	if net.On(7) {
		t.Fatal("killed node still on")
	}
	k.Run(60 * time.Second) // many waves
	if net.On(7) {
		t.Fatal("killed node revived by a wave")
	}
	if got := s.Killed(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("Killed = %v", got)
	}
	s.Finish()
	// Up-time closed at the kill instant (t=0).
	if up := net.Meter(7).UpTime(); up != 0 {
		t.Fatalf("killed-at-zero node has up-time %v", up)
	}
}

func TestKillWhileWaveFailed(t *testing.T) {
	k, net := testNet(t, 10)
	s, err := New(k, net, 10, Config{Fraction: 0.5, Wave: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	victim := s.Down()[0]
	s.Kill(victim) // node already off from the wave
	k.Run(30 * time.Second)
	if net.On(victim) {
		t.Fatal("node killed while wave-failed was revived")
	}
}

func TestWaveSizeShrinksAfterKills(t *testing.T) {
	k, net := testNet(t, 100)
	s, err := New(k, net, 100, Config{Fraction: 0.2, Wave: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	if len(s.Down()) != 20 {
		t.Fatalf("first wave %d, want 20", len(s.Down()))
	}
	// Halve the living population; the next wave must fail 20% of the
	// survivors, not 20% of the original field.
	killed := 0
	for i := 0; i < 100 && killed < 50; i++ {
		s.Kill(topology.NodeID(i))
		killed++
	}
	k.Run(15 * time.Second) // second wave at t=10
	if got := len(s.Down()); got != 10 {
		t.Fatalf("wave after 50 kills failed %d nodes, want int(0.2*50)=10", got)
	}
}

// TestKillMidWaveExactUpTime pins the accounting across a kill/wave
// interleaving: a node killed mid-wave while still powered on accrues
// exactly the time until the kill; a node killed while wave-failed accrues
// exactly the time until the wave took it down.
func TestKillMidWaveExactUpTime(t *testing.T) {
	k, net := testNet(t, 10)
	s, err := New(k, net, 10, Config{Fraction: 0.5, Wave: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Start() // wave 1 at t=0: five nodes down
	var waveVictim, liveVictim topology.NodeID = -1, -1
	down := map[topology.NodeID]bool{}
	for _, id := range s.Down() {
		down[id] = true
	}
	for i := 0; i < 10; i++ {
		id := topology.NodeID(i)
		if down[id] && waveVictim < 0 {
			waveVictim = id
		}
		if !down[id] && liveVictim < 0 {
			liveVictim = id
		}
	}
	k.Schedule(3*time.Second, func() {
		s.Kill(waveVictim) // off since t=0: up-time must stay 0
		s.Kill(liveVictim) // on until now: up-time must be exactly 3 s
	})
	k.Run(20 * time.Second) // several waves churn past the kills
	s.Finish()
	if net.On(waveVictim) || net.On(liveVictim) {
		t.Fatal("killed node revived by a later wave")
	}
	if up := net.Meter(waveVictim).UpTime(); up != 0 {
		t.Fatalf("wave-failed victim up-time %v, want 0", up)
	}
	if up := net.Meter(liveVictim).UpTime(); up != 3*time.Second {
		t.Fatalf("live victim up-time %v, want exactly 3s", up)
	}
}

// TestFailReviveAccounting covers the chaos layer's crash path: explicit
// Fail/Revive cycles with exact up-time bookkeeping, idempotent edges, and
// no revival of the permanently dead.
func TestFailReviveAccounting(t *testing.T) {
	k, net := testNet(t, 4)
	s, err := New(k, net, 4, Config{Fraction: 0, Wave: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s.Start() // zero fraction: no waves interfere
	k.Schedule(10*time.Second, func() { s.Fail(3); s.Fail(3) })
	k.Schedule(25*time.Second, func() { s.Revive(3); s.Revive(3) })
	k.Schedule(40*time.Second, func() { s.Kill(3) })
	k.Schedule(50*time.Second, func() { s.Revive(3) }) // dead stays dead
	k.Run(60 * time.Second)
	s.Finish()
	if net.On(3) {
		t.Fatal("Revive resurrected a killed node")
	}
	// Up 0-10 and 25-40: exactly 25 s.
	if up := net.Meter(3).UpTime(); up != 25*time.Second {
		t.Fatalf("up-time %v, want exactly 25s", up)
	}
}

func TestOnWaveHook(t *testing.T) {
	k, net := testNet(t, 100)
	s, err := New(k, net, 100, Config{Fraction: 0.2, Wave: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	s.SetOnWave(func(down []topology.NodeID) { sizes = append(sizes, len(down)) })
	s.Start()
	k.Run(25 * time.Second) // waves at 0, 10, 20
	if len(sizes) != 3 {
		t.Fatalf("hook fired %d times, want 3", len(sizes))
	}
	for i, n := range sizes {
		if n != 20 {
			t.Fatalf("wave %d size %d, want 20", i, n)
		}
	}
}
