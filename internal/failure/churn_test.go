package failure

import (
	"testing"
	"time"

	"repro/internal/topology"
)

func TestChurnConfigZeroValueInert(t *testing.T) {
	var cfg ChurnConfig
	if cfg.Enabled() {
		t.Fatal("zero ChurnConfig should be disabled")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero ChurnConfig should validate: %v", err)
	}
	if _, err := NewChurn(nil, nil, cfg); err == nil {
		t.Fatal("NewChurn should reject a disabled config")
	}
}

func TestChurnConfigValidate(t *testing.T) {
	bad := []ChurnConfig{
		{JoinFraction: -0.1, JoinWindow: time.Second},
		{JoinFraction: 1.0, JoinWindow: time.Second},
		{JoinFraction: 0.2}, // no window
		{JoinFraction: 0.2, JoinWindow: time.Second, LeaveInterval: -time.Second},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestColdJoinsBootOffThenJoinInWindow(t *testing.T) {
	k, net := testNet(t, 100)
	s, err := New(k, net, 100, Config{Fraction: 0, Wave: time.Second,
		Protect: []topology.NodeID{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChurn(k, s, ChurnConfig{JoinFraction: 0.25, JoinWindow: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var joined []topology.NodeID
	c.SetOnJoin(func(id topology.NodeID) {
		if net.On(id) {
			t.Errorf("join hook for %d fired after power-on; cold boot must wipe first", id)
		}
		joined = append(joined, id)
	})
	s.Start()
	c.Start()

	// 24 unprotected nodes (int(0.25*98)) must be dark at t=0.
	off := 0
	for i := 0; i < 100; i++ {
		if !net.On(topology.NodeID(i)) {
			off++
		}
	}
	if off != 24 {
		t.Fatalf("%d nodes off at start, want 24", off)
	}
	if !net.On(0) || !net.On(1) {
		t.Fatal("protected node drawn as a joiner")
	}

	k.Run(20 * time.Second)
	s.Finish()
	if c.Joins() != 24 || len(joined) != 24 {
		t.Fatalf("joins = %d (hook %d), want 24", c.Joins(), len(joined))
	}
	for i := 0; i < 100; i++ {
		if !net.On(topology.NodeID(i)) {
			t.Fatalf("node %d still off after the join window", i)
		}
	}
}

func TestDeparturesArePermanentAndProtected(t *testing.T) {
	k, net := testNet(t, 50)
	s, err := New(k, net, 50, Config{Fraction: 0, Wave: time.Second,
		Protect: []topology.NodeID{5}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewChurn(k, s, ChurnConfig{LeaveInterval: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var left []topology.NodeID
	c.SetOnLeave(func(id topology.NodeID) { left = append(left, id) })
	s.Start()
	c.Start()
	k.Run(60 * time.Second)
	s.Finish()

	if c.Departures() == 0 {
		t.Fatal("no departures over 60 s with a 2 s mean interval")
	}
	if c.Departures() != len(left) || c.Departures() != len(s.Killed()) {
		t.Fatalf("departures=%d hook=%d killed=%d; must agree",
			c.Departures(), len(left), len(s.Killed()))
	}
	for _, id := range left {
		if id == 5 {
			t.Fatal("protected node departed")
		}
		if net.On(id) {
			t.Fatalf("departed node %d is back on", id)
		}
	}
}

// TestChurnUpTimeStillDownAtEnd is the accounting regression pin: a joiner
// that never joins before the horizon and a departed node must both end the
// run with exactly their closed up-time — and Finish must report it, charge
// the meter once, and stay idempotent.
func TestChurnUpTimeStillDownAtEnd(t *testing.T) {
	k, net := testNet(t, 10)
	s, err := New(k, net, 10, Config{Fraction: 0, Wave: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// One joiner (int(0.1*10)=1) whose join window extends past the run.
	c, err := NewChurn(k, s, ChurnConfig{JoinFraction: 0.1, JoinWindow: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	c.Start()
	var joiner topology.NodeID = -1
	for i := 0; i < 10; i++ {
		if !net.On(topology.NodeID(i)) {
			joiner = topology.NodeID(i)
		}
	}
	if joiner < 0 {
		t.Fatal("no joiner drawn")
	}
	// And one explicit departure at t=30s.
	departed := topology.NodeID((int(joiner) + 1) % 10)
	k.Schedule(30*time.Second, func() { s.Kill(departed) })

	k.Run(100 * time.Second)
	s.Finish()

	if got := s.UpTime(joiner); got != 0 {
		t.Fatalf("never-joined node UpTime = %v, want 0 (still down at run end)", got)
	}
	if got := s.UpTime(departed); got != 30*time.Second {
		t.Fatalf("departed node UpTime = %v, want exactly 30s", got)
	}
	if got := net.Meter(joiner).UpTime(); got != 0 {
		t.Fatalf("never-joined node meter up-time = %v, want 0", got)
	}
	if got := net.Meter(departed).UpTime(); got != 30*time.Second {
		t.Fatalf("departed node meter up-time = %v, want 30s", got)
	}
	// Finish is idempotent: a second call must not double-charge the meters
	// and UpTime keeps reporting the final totals.
	s.Finish()
	if got := net.Meter(departed).UpTime(); got != 30*time.Second {
		t.Fatalf("double Finish changed meter up-time to %v", got)
	}
	if got := s.UpTime(departed); got != 30*time.Second {
		t.Fatalf("UpTime after double Finish = %v, want 30s", got)
	}
}

func TestChurnDeterministic(t *testing.T) {
	run := func() ([]topology.NodeID, int) {
		k, net := testNet(t, 80)
		s, err := New(k, net, 80, Config{Fraction: 0, Wave: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewChurn(k, s, ChurnConfig{
			JoinFraction: 0.2, JoinWindow: 30 * time.Second, LeaveInterval: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		var joined []topology.NodeID
		c.SetOnJoin(func(id topology.NodeID) { joined = append(joined, id) })
		s.Start()
		c.Start()
		k.Run(120 * time.Second)
		return joined, c.Departures()
	}
	j1, d1 := run()
	j2, d2 := run()
	if d1 != d2 || len(j1) != len(j2) {
		t.Fatalf("churn diverged: %d/%d joins, %d/%d departures", len(j1), len(j2), d1, d2)
	}
	for i := range j1 {
		if j1[i] != j2[i] {
			t.Fatalf("join order diverged at %d: %v vs %v", i, j1[i], j2[i])
		}
	}
}
