package failure

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/topology"
)

// ChurnConfig describes population churn: cold-joining nodes and permanent
// departures. The zero value is inert. Churn is distinct from the §5.3
// crash/revive dynamics in both directions: a joining node has never run —
// it boots with empty protocol soft state (the driver's OnJoin hook wipes
// any residue, exactly like a crash with amnesia) — and a departed node is
// gone for good (Kill, not a wave member awaiting revival).
type ChurnConfig struct {
	// JoinFraction of the unprotected population is absent at the start of
	// the run and cold-joins during JoinWindow.
	JoinFraction float64
	// JoinWindow is the interval over which join times are drawn uniformly.
	JoinWindow time.Duration
	// LeaveInterval is the mean exponential gap between permanent
	// departures, each removing a uniform live unprotected node; zero
	// disables departures.
	LeaveInterval time.Duration
}

// Enabled reports whether the configuration asks for any churn.
func (c ChurnConfig) Enabled() bool { return c.JoinFraction > 0 || c.LeaveInterval > 0 }

// Validate reports the first problem with the configuration, if any. The
// zero value is always valid.
func (c ChurnConfig) Validate() error {
	switch {
	case c.JoinFraction < 0 || c.JoinFraction >= 1:
		return fmt.Errorf("failure: join fraction %v outside [0,1)", c.JoinFraction)
	case c.JoinFraction > 0 && c.JoinWindow <= 0:
		return fmt.Errorf("failure: joins enabled with non-positive window %v", c.JoinWindow)
	case c.LeaveInterval < 0:
		return fmt.Errorf("failure: negative leave interval %v", c.LeaveInterval)
	default:
		return nil
	}
}

// Churn drives join/leave dynamics on top of a Schedule, sharing its up-time
// accounting, protection set, and permanent-death bookkeeping. All draws
// flow through the kernel's RNG at Start, so the churn plan is deterministic
// in the seed.
//
// Combining joins with failure waves is legal; the paths are idempotent. A
// wave redraw can at worst revive a pending joiner a little early — the join
// event then only fires the cold-boot hook again, and the accounting stays
// exact either way.
type Churn struct {
	kernel *sim.Kernel
	sched  *Schedule
	cfg    ChurnConfig

	onJoin  func(topology.NodeID)
	onLeave func(topology.NodeID)

	joins      int
	departures int
}

// NewChurn builds a churn driver over sched. Call Start after the
// schedule's own Start.
func NewChurn(kernel *sim.Kernel, sched *Schedule, cfg ChurnConfig) (*Churn, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Enabled() {
		return nil, fmt.Errorf("failure: NewChurn with disabled churn config")
	}
	return &Churn{kernel: kernel, sched: sched, cfg: cfg}, nil
}

// SetOnJoin registers the cold-boot hook, invoked at each join after the
// node is powered off and immediately before it powers on — wire the
// protocol's soft-state wipe (and any checker reset) here so the node
// provably boots empty.
func (c *Churn) SetOnJoin(fn func(topology.NodeID)) { c.onJoin = fn }

// SetOnLeave registers the departure hook, invoked just before the node is
// permanently killed. Recovery metrics stamp fault events here.
func (c *Churn) SetOnLeave(fn func(topology.NodeID)) { c.onLeave = fn }

// Start powers the joining population off and schedules its joins, then
// arms the departure process.
func (c *Churn) Start() {
	if c.cfg.JoinFraction > 0 {
		c.drawJoiners()
	}
	if c.cfg.LeaveInterval > 0 {
		c.scheduleLeave()
	}
}

// drawJoiners picks a uniform JoinFraction subset of the unprotected living
// population, powers it off now, and schedules each node's cold join at a
// uniform time in (0, JoinWindow].
func (c *Churn) drawJoiners() {
	candidates := make([]topology.NodeID, 0, c.sched.nodes)
	for i := 0; i < c.sched.nodes; i++ {
		id := topology.NodeID(i)
		if !c.sched.protect[id] && !c.sched.dead[id] {
			candidates = append(candidates, id)
		}
	}
	k := int(c.cfg.JoinFraction * float64(len(candidates)))
	rng := c.kernel.Rand()
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(candidates)-i)
		candidates[i], candidates[j] = candidates[j], candidates[i]
		id := candidates[i]
		c.sched.Fail(id)
		at := time.Duration(rng.Float64() * float64(c.cfg.JoinWindow))
		c.kernel.Schedule(at, func() { c.join(id) })
	}
}

// join cold-boots one node: wipe first (the node has never run — any state
// is residue), then power on. A node that departed before its join time
// simply never appears.
func (c *Churn) join(id topology.NodeID) {
	if c.sched.dead[id] {
		return
	}
	c.joins++
	if c.onJoin != nil {
		c.onJoin(id)
	}
	c.sched.Revive(id)
}

// scheduleLeave arms the next permanent departure.
func (c *Churn) scheduleLeave() {
	d := time.Duration(c.kernel.Rand().ExpFloat64() * float64(c.cfg.LeaveInterval))
	c.kernel.Schedule(d, c.leave)
}

// leave removes a uniform live unprotected node for good. Off nodes —
// including pending joiners — are never drawn, so a departure is always the
// loss of a working node.
func (c *Churn) leave() {
	defer c.scheduleLeave()
	var candidates []topology.NodeID
	for i := 0; i < c.sched.nodes; i++ {
		id := topology.NodeID(i)
		if !c.sched.protect[id] && !c.sched.dead[id] && c.sched.net.On(id) {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return
	}
	id := candidates[c.kernel.Rand().Intn(len(candidates))]
	c.departures++
	if c.onLeave != nil {
		c.onLeave(id)
	}
	c.sched.Kill(id)
}

// Joins returns how many nodes have cold-joined so far.
func (c *Churn) Joins() int { return c.joins }

// Departures returns how many nodes have permanently departed so far.
func (c *Churn) Departures() int { return c.departures }
