// Package failure injects the paper's node-failure dynamics (§5.3): for the
// whole run, 20% of the nodes are off at any instant; a fresh uniform 20%
// subset is drawn every 30 seconds with no settling time between waves.
//
// The schedule also owns per-node up-time accounting: a failed node
// dissipates no idle energy while it is off.
package failure

import (
	"fmt"
	"time"

	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Config describes the failure process.
type Config struct {
	// Fraction of nodes down at any instant (paper: 0.20).
	Fraction float64
	// Wave is how long each failed subset stays down before the next is
	// drawn (paper: 30 s).
	Wave time.Duration
	// Protect lists nodes never failed (typically sources and sinks, so
	// the metric measures protocol robustness rather than workload death).
	Protect []topology.NodeID
}

// DefaultConfig returns the paper's failure parameters.
func DefaultConfig() Config {
	return Config{Fraction: 0.20, Wave: 30 * time.Second}
}

// Validate reports the first problem with the configuration, if any.
func (c Config) Validate() error {
	switch {
	case c.Fraction < 0 || c.Fraction >= 1:
		return fmt.Errorf("failure: fraction %v outside [0,1)", c.Fraction)
	case c.Wave <= 0:
		return fmt.Errorf("failure: non-positive wave %v", c.Wave)
	default:
		return nil
	}
}

// Schedule drives failure waves on a network and tracks per-node up-time.
type Schedule struct {
	kernel  *sim.Kernel
	net     *mac.Network
	nodes   int
	cfg     Config
	protect map[topology.NodeID]bool

	upSince  []time.Duration // valid while node is on
	upTotal  []time.Duration
	down     []topology.NodeID // currently failed wave
	killed   []topology.NodeID // permanently dead (battery depletion)
	dead     map[topology.NodeID]bool
	waves    int
	onWave   func(down []topology.NodeID)
	finished bool
}

// SetOnWave registers a callback invoked after each wave redraw with the
// freshly failed node set. Chaos recovery metrics use it to timestamp fault
// events; the callback must not mutate the schedule.
func (s *Schedule) SetOnWave(fn func(down []topology.NodeID)) { s.onWave = fn }

// New creates a schedule over n nodes. Call Start to begin the waves; call
// Finish when the run ends to close up-time accounting.
func New(kernel *sim.Kernel, net *mac.Network, n int, cfg Config) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{
		kernel:  kernel,
		net:     net,
		nodes:   n,
		cfg:     cfg,
		protect: make(map[topology.NodeID]bool, len(cfg.Protect)),
		dead:    make(map[topology.NodeID]bool),
		upSince: make([]time.Duration, n),
		upTotal: make([]time.Duration, n),
	}
	for _, id := range cfg.Protect {
		s.protect[id] = true
	}
	for i := range s.upSince {
		s.upSince[i] = kernel.Now()
	}
	return s, nil
}

// Start launches the first wave immediately and re-draws every Wave.
func (s *Schedule) Start() {
	if s.cfg.Fraction == 0 {
		return
	}
	s.wave()
}

func (s *Schedule) wave() {
	// Revive the previous wave.
	for _, id := range s.down {
		s.reviveNode(id)
	}
	s.down = s.down[:0]
	s.waves++

	// Draw a fresh uniform subset among unprotected, still-living nodes.
	candidates := make([]topology.NodeID, 0, s.nodes)
	for i := 0; i < s.nodes; i++ {
		if !s.protect[topology.NodeID(i)] && !s.dead[topology.NodeID(i)] {
			candidates = append(candidates, topology.NodeID(i))
		}
	}
	// The wave size is Fraction of the *living* population (protected nodes
	// included — they are alive, just never drawn), truncated toward zero, so
	// permanent Kill()s shrink later waves instead of over-failing the
	// survivors. With no kills this equals the historical
	// int(Fraction*nodes), keeping seeded runs reproducible. The remaining
	// clamp only guards the degenerate case of fewer unprotected survivors
	// than the target.
	living := s.nodes - len(s.dead)
	k := int(s.cfg.Fraction * float64(living))
	if k > len(candidates) {
		k = len(candidates)
	}
	rng := s.kernel.Rand()
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(candidates)-i)
		candidates[i], candidates[j] = candidates[j], candidates[i]
		s.failNode(candidates[i])
		s.down = append(s.down, candidates[i])
	}
	if s.onWave != nil {
		s.onWave(s.Down())
	}
	s.kernel.Schedule(s.cfg.Wave, s.wave)
}

func (s *Schedule) failNode(id topology.NodeID) {
	if !s.net.On(id) {
		return
	}
	s.upTotal[id] += s.kernel.Now() - s.upSince[id]
	s.net.SetOn(id, false)
}

func (s *Schedule) reviveNode(id topology.NodeID) {
	if s.net.On(id) || s.dead[id] {
		return
	}
	s.upSince[id] = s.kernel.Now()
	s.net.SetOn(id, true)
}

// Fail powers node id off with correct up-time accounting, without
// scheduling any revival; a no-op if the node is already off. Chaos
// injectors use it for crash faults they revive themselves.
func (s *Schedule) Fail(id topology.NodeID) { s.failNode(id) }

// Revive powers node id back on with correct up-time accounting; a no-op if
// the node is on or permanently dead. Note a wave redraw can legitimately
// revive a crash-failed node first (both paths are idempotent, so the
// accounting stays exact either way).
func (s *Schedule) Revive(id topology.NodeID) { s.reviveNode(id) }

// Kill permanently powers node id off with correct up-time accounting:
// unlike wave failures, a killed node is never revived. Battery-depletion
// experiments use this.
func (s *Schedule) Kill(id topology.NodeID) {
	if s.dead[id] {
		return
	}
	s.failNode(id)
	s.dead[id] = true
	s.killed = append(s.killed, id)
}

// Killed returns the nodes permanently removed via Kill, in kill order.
func (s *Schedule) Killed() []topology.NodeID {
	return append([]topology.NodeID(nil), s.killed...)
}

// Waves returns how many failure waves have been drawn.
func (s *Schedule) Waves() int { return s.waves }

// Down returns a copy of the currently failed node set.
func (s *Schedule) Down() []topology.NodeID {
	return append([]topology.NodeID(nil), s.down...)
}

// Finish closes the accounting at the current instant and charges each
// node's idle up-time to its energy meter. Call once after the kernel run
// completes; a second call is a no-op, so the meters can never be charged
// twice. Nodes still down at the end (wave-failed, killed, or never joined)
// are charged exactly their closed intervals — their running upTotal already
// holds the truth, which UpTime keeps reporting after Finish.
func (s *Schedule) Finish() {
	if s.finished {
		return
	}
	s.finished = true
	now := s.kernel.Now()
	for i := 0; i < s.nodes; i++ {
		id := topology.NodeID(i)
		if s.net.On(id) {
			s.upTotal[id] += now - s.upSince[id]
			s.upSince[id] = now
		}
		s.net.Meter(id).AddUpTime(s.upTotal[id])
	}
}

// UpTime returns node id's accumulated powered-on time: the closed intervals
// so far (an open interval of a currently-on node is not counted), or the
// final total once Finish has run.
func (s *Schedule) UpTime(id topology.NodeID) time.Duration { return s.upTotal[id] }
