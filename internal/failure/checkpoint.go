package failure

import (
	"fmt"
	"time"

	"repro/internal/topology"
)

// ScheduleState is a schedule's mutable accounting for checkpoint/restore
// (DESIGN.md §12). The checkpoint envelope rejects runs with an active wave
// process (Fraction > 0 — its rescheduling closure is not snapshot-visible),
// so Down and Waves are always empty/zero here; what remains is the battery
// path: up-time accounting and the permanently killed set.
type ScheduleState struct {
	UpSince []time.Duration
	UpTotal []time.Duration
	Killed  []topology.NodeID
}

// State captures the schedule's accounting.
func (s *Schedule) State() ScheduleState {
	return ScheduleState{
		UpSince: append([]time.Duration(nil), s.upSince...),
		UpTotal: append([]time.Duration(nil), s.upTotal...),
		Killed:  append([]topology.NodeID(nil), s.killed...),
	}
}

// RestoreState overwrites the schedule's accounting with a captured state,
// rebuilding the dead set from the kill order. The caller is responsible for
// the network-side power state (mac restore re-applies per-node on/off).
func (s *Schedule) RestoreState(st ScheduleState) error {
	if len(st.UpSince) != s.nodes || len(st.UpTotal) != s.nodes {
		return fmt.Errorf("failure: restore %d/%d intervals into %d-node schedule",
			len(st.UpSince), len(st.UpTotal), s.nodes)
	}
	s.upSince = append(s.upSince[:0], st.UpSince...)
	s.upTotal = append(s.upTotal[:0], st.UpTotal...)
	s.killed = append(s.killed[:0], st.Killed...)
	s.dead = make(map[topology.NodeID]bool, len(st.Killed))
	for _, id := range st.Killed {
		if int(id) < 0 || int(id) >= s.nodes {
			return fmt.Errorf("failure: restored kill of out-of-range node %d", id)
		}
		s.dead[id] = true
	}
	return nil
}
