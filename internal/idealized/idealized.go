// Package idealized implements the two reference schemes the diffusion
// papers' evaluations are traditionally calibrated against (the paper's
// metrics "were used in earlier work to compare diffusion with other
// idealized schemes"):
//
//   - Flooding: every source broadcasts each event and every node
//     rebroadcasts unseen events — the robust upper bound on traffic.
//   - Omniscient multicast: each source sends events down a precomputed
//     shortest-path tree to the sinks, with no discovery, control traffic,
//     or maintenance of any kind — the idealized lower bound. It still
//     pays the real MAC (contention, ACKs, losses), just not the routing.
//
// Both run on the same kernel/MAC/metrics substrates as the diffusion
// schemes, so their numbers are directly comparable.
package idealized

import (
	"fmt"
	"math"
	"time"

	"repro/internal/datacentric"
	"repro/internal/mac"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Observer matches diffusion.Observer so metrics collection is shared.
type Observer interface {
	Generated(src topology.NodeID, item msg.Item)
	Delivered(sink topology.NodeID, item msg.Item, delay time.Duration)
}

// Params configures the idealized schemes. Zero value is invalid; use
// DefaultParams.
type Params struct {
	// DataPeriod is the event generation interval (paper: 0.5 s).
	DataPeriod time.Duration
	// FloodJitterMax bounds the rebroadcast jitter of the flooding scheme.
	FloodJitterMax time.Duration
	// CacheTTL bounds the duplicate-suppression cache of the flooding
	// scheme.
	CacheTTL time.Duration
}

// DefaultParams matches the diffusion workload defaults.
func DefaultParams() Params {
	return Params{
		DataPeriod:     500 * time.Millisecond,
		FloodJitterMax: 50 * time.Millisecond,
		CacheTTL:       20 * time.Second,
	}
}

// Validate reports the first problem with the parameters, if any.
func (p Params) Validate() error {
	switch {
	case p.DataPeriod <= 0:
		return fmt.Errorf("idealized: non-positive data period %v", p.DataPeriod)
	case p.FloodJitterMax < 0:
		return fmt.Errorf("idealized: negative jitter %v", p.FloodJitterMax)
	case p.CacheTTL <= 0:
		return fmt.Errorf("idealized: non-positive cache TTL %v", p.CacheTTL)
	default:
		return nil
	}
}

// Roles assigns sinks and sources (mirrors diffusion.Roles).
type Roles struct {
	Sinks   []topology.NodeID
	Sources []topology.NodeID
}

// --- flooding ----------------------------------------------------------------

// Flooding is the classic flooding data-dissemination scheme.
type Flooding struct {
	kernel   *sim.Kernel
	net      *mac.Network
	field    *topology.Field
	params   Params
	roles    Roles
	observer Observer

	isSink map[topology.NodeID]bool
	seen   []map[msg.ItemKey]time.Duration
	seqs   map[topology.NodeID]int
	sent   int
}

// NewFlooding constructs the scheme over the field.
func NewFlooding(kernel *sim.Kernel, net *mac.Network, field *topology.Field,
	params Params, roles Roles, observer Observer) (*Flooding, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(roles.Sinks) == 0 || len(roles.Sources) == 0 {
		return nil, fmt.Errorf("idealized: need sinks and sources")
	}
	f := &Flooding{
		kernel:   kernel,
		net:      net,
		field:    field,
		params:   params,
		roles:    roles,
		observer: observer,
		isSink:   make(map[topology.NodeID]bool, len(roles.Sinks)),
		seen:     make([]map[msg.ItemKey]time.Duration, field.Len()),
		seqs:     make(map[topology.NodeID]int, len(roles.Sources)),
	}
	for _, s := range roles.Sinks {
		f.isSink[s] = true
	}
	for i := range f.seen {
		f.seen[i] = make(map[msg.ItemKey]time.Duration)
	}
	for i := 0; i < field.Len(); i++ {
		id := topology.NodeID(i)
		net.SetReceiver(id, func(from topology.NodeID, fr mac.Frame) { f.receive(id, fr) })
	}
	return f, nil
}

// Sent returns the number of data broadcasts handed to the MAC.
func (f *Flooding) Sent() int { return f.sent }

// Start schedules event generation at every source.
func (f *Flooding) Start() {
	for _, src := range f.roles.Sources {
		src := src
		f.kernel.Schedule(f.jitter(f.params.DataPeriod), func() { f.generate(src) })
	}
	f.kernel.Schedule(f.params.CacheTTL, f.prune)
}

func (f *Flooding) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(f.kernel.Rand().Int63n(int64(max)))
}

func (f *Flooding) generate(src topology.NodeID) {
	defer f.kernel.Schedule(f.params.DataPeriod, func() { f.generate(src) })
	if !f.net.On(src) {
		return
	}
	item := msg.Item{Source: src, Seq: f.seqs[src], GenTime: int64(f.kernel.Now())}
	f.seqs[src]++
	if f.observer != nil {
		f.observer.Generated(src, item)
	}
	f.seen[src][item.Key()] = f.kernel.Now()
	f.broadcast(src, item)
}

func (f *Flooding) broadcast(from topology.NodeID, item msg.Item) {
	// item is a private copy: the outgoing payload rides one more
	// transmission, so delivered items carry their path length in Hops.
	if item.Hops < math.MaxUint16 {
		item.Hops++
	}
	m := msg.Message{
		Kind:     msg.KindData,
		Interest: 0,
		Origin:   item.Source,
		Items:    []msg.Item{item},
		W:        1,
		Bytes:    msg.EventBytes,
	}
	f.sent++
	_ = f.net.Broadcast(from, mac.Frame{Bytes: m.Bytes, Payload: m})
}

func (f *Flooding) receive(at topology.NodeID, fr mac.Frame) {
	m, ok := fr.Payload.(msg.Message)
	if !ok || len(m.Items) != 1 {
		return
	}
	item := m.Items[0]
	if _, dup := f.seen[at][item.Key()]; dup {
		return
	}
	f.seen[at][item.Key()] = f.kernel.Now()
	if f.isSink[at] && f.observer != nil {
		f.observer.Delivered(at, item, f.kernel.Now()-time.Duration(item.GenTime))
	}
	// Sinks still rebroadcast: other sinks may sit behind them.
	f.kernel.Schedule(f.jitter(f.params.FloodJitterMax), func() {
		if f.net.On(at) {
			f.broadcast(at, item)
		}
	})
}

func (f *Flooding) prune() {
	defer f.kernel.Schedule(f.params.CacheTTL/2, f.prune)
	cutoff := f.kernel.Now() - f.params.CacheTTL
	for _, m := range f.seen {
		for k, at := range m {
			if at < cutoff {
				delete(m, k)
			}
		}
	}
}

// --- omniscient multicast ------------------------------------------------------

// Multicast is the omniscient-multicast reference: per-source shortest-path
// trees to all sinks, known a priori, with zero control traffic.
type Multicast struct {
	kernel   *sim.Kernel
	net      *mac.Network
	params   Params
	roles    Roles
	observer Observer

	// children[src][node] lists the forwarding fan-out at node for src's
	// tree; sinkSet marks delivery points.
	children map[topology.NodeID]map[topology.NodeID][]topology.NodeID
	isSink   map[topology.NodeID]bool
	seqs     map[topology.NodeID]int
	sent     int
}

// NewMulticast precomputes each source's shortest-path tree spanning every
// sink (using the GIT heuristic over the sinks, which is exact for one
// sink) and wires delivery.
func NewMulticast(kernel *sim.Kernel, net *mac.Network, field *topology.Field,
	params Params, roles Roles, observer Observer) (*Multicast, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(roles.Sinks) == 0 || len(roles.Sources) == 0 {
		return nil, fmt.Errorf("idealized: need sinks and sources")
	}
	m := &Multicast{
		kernel:   kernel,
		net:      net,
		params:   params,
		roles:    roles,
		observer: observer,
		children: make(map[topology.NodeID]map[topology.NodeID][]topology.NodeID),
		isSink:   make(map[topology.NodeID]bool, len(roles.Sinks)),
		seqs:     make(map[topology.NodeID]int),
	}
	for _, s := range roles.Sinks {
		m.isSink[s] = true
	}
	for _, src := range roles.Sources {
		// Build the multicast tree rooted at the source by treating the
		// source as the "sink" of a GIT over the real sinks.
		tree, err := datacentric.GIT(field, src, roles.Sinks)
		if err != nil {
			return nil, fmt.Errorf("idealized: source %d: %w", src, err)
		}
		kids := make(map[topology.NodeID][]topology.NodeID)
		// Orient the undirected tree away from the source with a DFS.
		adj := make(map[topology.NodeID][]topology.NodeID)
		for e := range tree.Edges {
			adj[e.A] = append(adj[e.A], e.B)
			adj[e.B] = append(adj[e.B], e.A)
		}
		visited := map[topology.NodeID]bool{src: true}
		stack := []topology.NodeID{src}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					kids[v] = append(kids[v], w)
					stack = append(stack, w)
				}
			}
		}
		m.children[src] = kids
	}
	for i := 0; i < field.Len(); i++ {
		id := topology.NodeID(i)
		net.SetReceiver(id, func(from topology.NodeID, fr mac.Frame) { m.receive(id, fr) })
	}
	return m, nil
}

// Sent returns the number of data unicasts handed to the MAC.
func (m *Multicast) Sent() int { return m.sent }

// Start schedules event generation at every source.
func (m *Multicast) Start() {
	for _, src := range m.roles.Sources {
		src := src
		jitter := time.Duration(m.kernel.Rand().Int63n(int64(m.params.DataPeriod)))
		m.kernel.Schedule(jitter, func() { m.generate(src) })
	}
}

func (m *Multicast) generate(src topology.NodeID) {
	defer m.kernel.Schedule(m.params.DataPeriod, func() { m.generate(src) })
	if !m.net.On(src) {
		return
	}
	item := msg.Item{Source: src, Seq: m.seqs[src], GenTime: int64(m.kernel.Now())}
	m.seqs[src]++
	if m.observer != nil {
		m.observer.Generated(src, item)
	}
	m.forward(src, src, item)
}

func (m *Multicast) forward(src, at topology.NodeID, item msg.Item) {
	if m.isSink[at] && m.observer != nil {
		m.observer.Delivered(at, item, m.kernel.Now()-time.Duration(item.GenTime))
	}
	// The per-child payload rides one more transmission than the copy that
	// arrived here, so sinks observe their tree depth in Hops.
	next := item
	if next.Hops < math.MaxUint16 {
		next.Hops++
	}
	for _, child := range m.children[src][at] {
		out := msg.Message{
			Kind:     msg.KindData,
			Interest: 0,
			Origin:   src,
			Items:    []msg.Item{next},
			W:        1,
			Bytes:    msg.EventBytes,
		}
		m.sent++
		_ = m.net.Unicast(at, child, mac.Frame{Bytes: out.Bytes, Payload: out})
	}
}

func (m *Multicast) receive(at topology.NodeID, fr mac.Frame) {
	om, ok := fr.Payload.(msg.Message)
	if !ok || len(om.Items) != 1 {
		return
	}
	m.forward(om.Origin, at, om.Items[0])
}
