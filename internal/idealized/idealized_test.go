package idealized

import (
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/msg"
	"repro/internal/sim"
	"repro/internal/topology"
)

type recorder struct {
	generated []msg.Item
	delivered map[topology.NodeID][]msg.Item
	delays    []time.Duration
}

func newRecorder() *recorder {
	return &recorder{delivered: map[topology.NodeID][]msg.Item{}}
}

func (r *recorder) Generated(src topology.NodeID, it msg.Item) {
	r.generated = append(r.generated, it)
}

func (r *recorder) Delivered(sink topology.NodeID, it msg.Item, d time.Duration) {
	r.delivered[sink] = append(r.delivered[sink], it)
	r.delays = append(r.delays, d)
}

func build(t *testing.T, pts []geom.Point) (*sim.Kernel, *mac.Network, *topology.Field) {
	t.Helper()
	f, err := topology.FromPositions(geom.Square(0, 0, 1000), 40, pts)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel(1)
	net, err := mac.New(k, f, energy.PaperModel(), mac.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return k, net, f
}

func line(n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * 30}
	}
	return pts
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{DataPeriod: 0, CacheTTL: time.Second},
		{DataPeriod: time.Second, FloodJitterMax: -1, CacheTTL: time.Second},
		{DataPeriod: time.Second},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFloodingDeliversEverything(t *testing.T) {
	k, net, f := build(t, line(5))
	rec := newRecorder()
	fl, err := NewFlooding(k, net, f, DefaultParams(), Roles{
		Sinks: []topology.NodeID{4}, Sources: []topology.NodeID{0},
	}, rec)
	if err != nil {
		t.Fatal(err)
	}
	fl.Start()
	k.Run(10 * time.Second)
	if len(rec.generated) == 0 {
		t.Fatal("nothing generated")
	}
	ratio := float64(len(rec.delivered[4])) / float64(len(rec.generated))
	if ratio < 0.9 {
		t.Fatalf("flooding delivered %.2f on a clean line", ratio)
	}
	// Every node rebroadcasts once per item: sends ≈ items × nodes.
	if fl.Sent() < len(rec.generated)*3 {
		t.Fatalf("flooding sent only %d messages for %d items", fl.Sent(), len(rec.generated))
	}
	// No duplicate deliveries.
	seen := map[msg.ItemKey]bool{}
	for _, it := range rec.delivered[4] {
		if seen[it.Key()] {
			t.Fatal("duplicate delivery")
		}
		seen[it.Key()] = true
	}
}

func TestFloodingValidation(t *testing.T) {
	k, net, f := build(t, line(3))
	if _, err := NewFlooding(k, net, f, DefaultParams(), Roles{}, nil); err == nil {
		t.Fatal("empty roles accepted")
	}
	if _, err := NewFlooding(k, net, f, Params{}, Roles{
		Sinks: []topology.NodeID{1}, Sources: []topology.NodeID{0},
	}, nil); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestMulticastUsesOnlyTreeNodes(t *testing.T) {
	// Y topology: 0 and 1 are sinks, 2 the junction, 3 the source's relay,
	// 4 the source. The multicast tree must not touch node 5 (an idle
	// bystander in range).
	pts := []geom.Point{
		{X: 0, Y: 0},   // 0 sink A
		{X: 0, Y: 60},  // 1 sink B
		{X: 25, Y: 30}, // 2 junction
		{X: 55, Y: 30}, // 3 relay
		{X: 85, Y: 30}, // 4 source
		{X: 55, Y: 65}, // 5 bystander (in range of 3? dist=35 yes)
	}
	k, net, f := build(t, pts)
	rec := newRecorder()
	mc, err := NewMulticast(k, net, f, DefaultParams(), Roles{
		Sinks: []topology.NodeID{0, 1}, Sources: []topology.NodeID{4},
	}, rec)
	if err != nil {
		t.Fatal(err)
	}
	mc.Start()
	k.Run(10 * time.Second)

	for _, sink := range []topology.NodeID{0, 1} {
		if len(rec.delivered[sink]) == 0 {
			t.Fatalf("sink %d received nothing", sink)
		}
	}
	// The bystander transmits nothing (overhears only).
	if net.Meter(5).TxPackets() != 0 {
		t.Fatalf("bystander transmitted %d frames", net.Meter(5).TxPackets())
	}
	// Tree efficiency: the shared junction means sends per item stays
	// below two disjoint 3-hop paths (6); tree is 4 edges.
	perItem := float64(mc.Sent()) / float64(len(rec.generated))
	if perItem > 4.5 {
		t.Fatalf("%.1f sends per item suggests no shared tree", perItem)
	}
}

func TestMulticastDisconnectedSinkFails(t *testing.T) {
	pts := append(line(3), geom.Point{X: 900, Y: 900})
	k, net, f := build(t, pts)
	if _, err := NewMulticast(k, net, f, DefaultParams(), Roles{
		Sinks: []topology.NodeID{3}, Sources: []topology.NodeID{0},
	}, nil); err == nil {
		t.Fatal("unreachable sink accepted")
	}
}

func TestFloodingDelayBelowMulticastHops(t *testing.T) {
	// Sanity: both schemes deliver with sub-second delay on short paths.
	k, net, f := build(t, line(4))
	rec := newRecorder()
	fl, err := NewFlooding(k, net, f, DefaultParams(), Roles{
		Sinks: []topology.NodeID{3}, Sources: []topology.NodeID{0},
	}, rec)
	if err != nil {
		t.Fatal(err)
	}
	fl.Start()
	k.Run(5 * time.Second)
	for _, d := range rec.delays {
		if d < 0 || d > time.Second {
			t.Fatalf("implausible flooding delay %v", d)
		}
	}
}
