package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

const rawBase = `goos: linux
BenchmarkKernelSchedule 	73979215	        17.44 ns/op	       0 B/op	       0 allocs/op
BenchmarkMACBroadcast   	 1938591	       617.0 ns/op	       0 B/op	       0 allocs/op
PASS
`

const rawRegressed = `goos: linux
BenchmarkKernelSchedule 	50000000	        25.00 ns/op	      48 B/op	       2 allocs/op
BenchmarkMACBroadcast   	 1938591	       617.0 ns/op	       0 B/op	       0 allocs/op
PASS
`

func snapshot(t *testing.T, raw, path string) {
	t.Helper()
	b, err := bench.Parse(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotMode(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "raw.txt")
	if err := os.WriteFile(in, []byte(rawBase), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH_test.json")
	var sb strings.Builder
	if err := run([]string{"-out", out, in}, &sb); err != nil {
		t.Fatal(err)
	}
	b, err := bench.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Results) != 2 {
		t.Fatalf("snapshot has %d results, want 2", len(b.Results))
	}
}

func TestCompareCleanAndRegressed(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	snapshot(t, rawBase, basePath)

	same := filepath.Join(dir, "same.txt")
	if err := os.WriteFile(same, []byte(rawBase), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-baseline", basePath, same}, &sb); err != nil {
		t.Fatalf("identical run flagged: %v\n%s", err, sb.String())
	}

	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte(rawRegressed), 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	err := run([]string{"-baseline", basePath, bad}, &sb)
	if err == nil {
		t.Fatalf("alloc regression passed the gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Fatalf("log does not mark the regression:\n%s", sb.String())
	}
}

func TestCompareAcceptsSnapshotAsCurrent(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	curPath := filepath.Join(dir, "cur.json")
	snapshot(t, rawBase, basePath)
	snapshot(t, rawRegressed, curPath)
	var sb strings.Builder
	if err := run([]string{"-baseline", basePath, curPath}, &sb); err == nil {
		t.Fatalf("JSON current input not gated:\n%s", sb.String())
	}
}

func TestCompareMetricFlag(t *testing.T) {
	const withMetric = `goos: linux
BenchmarkScaleSweep/nodes=500 	       2	 100000000 ns/op	       12000 bytes/node	       0 B/op	       0 allocs/op
PASS
`
	const metricGrew = `goos: linux
BenchmarkScaleSweep/nodes=500 	       2	 100000000 ns/op	       16000 bytes/node	       0 B/op	       0 allocs/op
PASS
`
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	snapshot(t, withMetric, basePath)
	cur := filepath.Join(dir, "cur.txt")
	if err := os.WriteFile(cur, []byte(metricGrew), 0o644); err != nil {
		t.Fatal(err)
	}

	// Without -metric the growth passes; with it, the gate trips.
	var sb strings.Builder
	if err := run([]string{"-baseline", basePath, cur}, &sb); err != nil {
		t.Fatalf("bytes/node gated without -metric: %v\n%s", err, sb.String())
	}
	sb.Reset()
	err := run([]string{"-baseline", basePath, "-metric", "bytes/node", cur}, &sb)
	if err == nil {
		t.Fatalf("bytes/node +33%% passed -metric gate:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "bytes/node") {
		t.Fatalf("log does not name the gated metric:\n%s", sb.String())
	}
}

func TestCompareMetricMissingFromBaseline(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	snapshot(t, rawBase, basePath) // no custom metric columns at all
	cur := filepath.Join(dir, "cur.txt")
	if err := os.WriteFile(cur, []byte(rawBase), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run([]string{"-baseline", basePath, "-metric", "bytes/node", cur}, &sb)
	if err == nil {
		t.Fatalf("gating on a metric absent from the baseline passed silently:\n%s", sb.String())
	}
	for _, want := range []string{"bytes/node", "missing", basePath} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestModeFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"x.txt"}, &sb); err == nil {
		t.Fatal("missing mode flag accepted")
	}
	if err := run([]string{"-out", "a", "-baseline", "b"}, &sb); err == nil {
		t.Fatal("both mode flags accepted")
	}
}
