// Command benchdiff maintains and enforces benchmark baselines.
//
// Snapshot mode parses raw `go test -bench -benchmem` output (a file
// argument or stdin) into a committed baseline:
//
//	go test -bench=. -benchmem -run '^$' . | benchdiff -out BENCH_1.json
//
// Compare mode gates a new run against a committed baseline and exits
// non-zero on regression. The current run may be raw benchmark output or a
// previously snapshotted JSON file (detected by content):
//
//	go test -bench=. -benchmem -run '^$' . | benchdiff -baseline BENCH_1.json
//	benchdiff -baseline BENCH_1.json -threshold 0.10 current.txt
//
// Only allocs/op and B/op are gated by default: they are properties of the
// code, identical on every machine. Pass -time to also gate ns/op, which
// is only meaningful when baseline and current ran on the same hardware.
// Pass -metric <unit> (repeatable) to gate a custom b.ReportMetric column
// whose growth is bad, e.g. -metric bytes/node.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// errRegression distinguishes gate failures from usage errors.
var errRegression = fmt.Errorf("benchmark regression")

// metricList collects repeated -metric flags.
type metricList []string

func (m *metricList) String() string { return strings.Join(*m, ",") }

func (m *metricList) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty metric unit")
	}
	*m = append(*m, v)
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	outPath := fs.String("out", "", "snapshot mode: write parsed results to this baseline JSON")
	basePath := fs.String("baseline", "", "compare mode: baseline JSON to gate against")
	threshold := fs.Float64("threshold", 0.15, "tolerated fractional growth per gated quantity")
	gateTime := fs.Bool("time", false, "also gate ns/op (same-hardware comparisons only)")
	var metrics metricList
	fs.Var(&metrics, "metric", "custom metric unit to gate where growth is bad (repeatable), e.g. bytes/node")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*outPath == "") == (*basePath == "") {
		return fmt.Errorf("exactly one of -out (snapshot) or -baseline (compare) is required")
	}

	cur, err := readInput(fs.Args())
	if err != nil {
		return err
	}

	if *outPath != "" {
		if len(cur.Results) == 0 {
			return fmt.Errorf("no benchmark results in input")
		}
		if err := cur.Save(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d benchmark results to %s\n", len(cur.Results), *outPath)
		return nil
	}

	base, err := bench.Load(*basePath)
	if err != nil {
		return err
	}
	// A gated metric the baseline never recorded would otherwise be skipped
	// on every benchmark and pass silently — the gate would be vacuous.
	for _, unit := range metrics {
		if !hasMetric(base, unit) {
			return fmt.Errorf("metric %q missing from %s", unit, *basePath)
		}
	}
	deltas := bench.Compare(base, cur, bench.CompareOptions{
		Threshold:   *threshold,
		GateTime:    *gateTime,
		GateMetrics: metrics,
	})
	if len(deltas) == 0 {
		return fmt.Errorf("no benchmarks in common between %s and the current run", *basePath)
	}
	for _, d := range deltas {
		fmt.Fprintln(out, d)
	}
	if bad := bench.Regressions(deltas); len(bad) > 0 {
		fmt.Fprintf(out, "\n%d regression(s) past the %.0f%% gate\n", len(bad), 100**threshold)
		return errRegression
	}
	fmt.Fprintln(out, "\nno regressions")
	return nil
}

// hasMetric reports whether any baseline result carries the custom metric
// unit, i.e. whether gating on it can ever compare anything.
func hasMetric(b *bench.Baseline, unit string) bool {
	for _, r := range b.Results {
		if _, ok := r.Metrics[unit]; ok {
			return true
		}
	}
	return false
}

// readInput loads the current run from the single file argument or stdin,
// accepting either raw `go test -bench` text or a snapshotted JSON file.
func readInput(args []string) (*bench.Baseline, error) {
	var data []byte
	var err error
	switch len(args) {
	case 0:
		data, err = io.ReadAll(os.Stdin)
	case 1:
		if args[0] == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(args[0])
		}
	default:
		return nil, fmt.Errorf("at most one input file, got %v", args)
	}
	if err != nil {
		return nil, err
	}
	if trimmed := bytes.TrimSpace(data); len(trimmed) > 0 && trimmed[0] == '{' {
		// A snapshotted baseline rather than raw benchmark text.
		var b bench.Baseline
		if err := json.Unmarshal(trimmed, &b); err != nil {
			return nil, err
		}
		if b.SchemaVersion != bench.SchemaVersion {
			return nil, fmt.Errorf("input has schema %d, want %d", b.SchemaVersion, bench.SchemaVersion)
		}
		return &b, nil
	}
	return bench.Parse(strings.NewReader(string(data)))
}
