// Command experiments regenerates the paper's evaluation: every panel of
// Figures 5-10, the abstract GIT-vs-SPT comparison, the design-choice
// ablations, and the chaos robustness grid. Results are printed as aligned
// text tables and optionally written as CSV files.
//
// Examples:
//
//	experiments -fig 5                # Figure 5 with the paper's 10 fields
//	experiments -fig all -fields 3    # everything, 3 fields per point
//	experiments -fig 9 -quick         # reduced preset for a fast look
//	experiments -fig all -out results # also write results/fig*.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
)

type figureFunc func(harness.Options) (*harness.Table, error)

var figures = []struct {
	name string
	fn   figureFunc
}{
	{"5", harness.Fig5},
	{"6", harness.Fig6},
	{"7", harness.Fig7},
	{"8", harness.Fig8},
	{"9", harness.Fig9},
	{"10", harness.Fig10},
	{"ablation-truncation", harness.AblationTruncation},
	{"ablation-tp", harness.AblationReinforceDelay},
	{"ablation-ta", harness.AblationAggregationDelay},
	{"ablation-rtscts", harness.AblationRTSCTS},
	{"baselines", harness.Baselines},
}

// extraFigures are the non-Table figures handled by dedicated blocks below;
// "scale", "repair", and "mobility" are excluded from "all" (run them by
// name).
var extraFigures = []string{"git-spt", "lifetime", "chaos", "scale", "repair", "mobility"}

// validFigures lists every accepted -fig value, "all" last.
func validFigures() []string {
	names := make([]string, 0, len(figures)+len(extraFigures)+1)
	for _, f := range figures {
		names = append(names, f.name)
	}
	names = append(names, extraFigures...)
	return append(names, "all")
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		if errors.Is(err, core.ErrInterrupted) {
			fmt.Fprintln(os.Stderr, "experiments: progress saved — completed cells are on the ledger,"+
				" interrupted cells left checkpoints; re-run the same command to resume")
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		fig        = fs.String("fig", "all", `figure to regenerate: 5..10, "git-spt", "lifetime", "chaos", "scale", "repair", "mobility", an ablation name, or "all" (scale, repair, and mobility excluded: run them explicitly)`)
		fields     = fs.Int("fields", 0, "random fields per data point (default: paper's 10, or 3 with -quick)")
		duration   = fs.Duration("duration", 0, "simulated seconds per run (default 160s, 60s with -quick)")
		quick      = fs.Bool("quick", false, "reduced preset: 3 fields, 60 s, 3 densities (scale: 500 nodes only)")
		jobs       = fs.Int("jobs", 0, "cap on concurrent simulation workers (default GOMAXPROCS)")
		shards     = fs.Int("shards", 0, "run each eligible cell on the sharded parallel kernel with this many strips (0/1 = serial; jobs×shards is capped at GOMAXPROCS)")
		outDir     = fs.String("out", "", "directory for CSV output (created if missing)")
		plots      = fs.Bool("plot", false, "also draw each panel as an ASCII chart")
		progress   = fs.Bool("progress", false, "log each completed run to stderr with sweep progress and ETA")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write an allocation heap profile to this file on exit")

		scaleNodes     = fs.String("scale-nodes", "", `override the -fig scale node ladder with a comma-separated ascending list, e.g. "500,5000"`)
		big            = fs.Bool("big", false, "extend the -fig scale ladder with the 50000-node rung (needs several GB of heap)")
		ledger         = fs.String("ledger", "", "sweep progress ledger file: completed runs are recorded there and skipped on a re-run, so an interrupted sweep resumes")
		checkpointDir  = fs.String("checkpoint-dir", "", "directory for per-cell crash checkpoints (created if missing): eligible cells snapshot every -checkpoint-every of virtual time and a re-run resumes them mid-cell; combine with -ledger so completed cells are skipped too")
		checkpointEvr  = fs.Duration("checkpoint-every", 10*time.Second, "virtual-time interval between per-cell checkpoints (with -checkpoint-dir)")
		liveAddr       = fs.String("live", "", `serve the live debug endpoint (status, /metrics, /debug/pprof) on this address, e.g. "localhost:6060"`)
		flightDir      = fs.String("flight-dir", "", "arm a flight recorder on every run, dumping per-cell files into this directory on an invariant violation or panic")
		forceViolation = fs.Duration("force-violation", 0, "inject a synthetic invariant violation at this virtual time into every chaos-checked run (exercises the flight-dump path)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Fail fast on a bad figure name, before any profiling or output setup.
	known := false
	for _, name := range validFigures() {
		if *fig == name {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown figure %q (have: %s)", *fig, strings.Join(validFigures(), ", "))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	opts := harness.DefaultOptions()
	if *quick {
		opts = harness.QuickOptions()
	}
	if *fields > 0 {
		opts.Fields = *fields
	}
	if *duration > 0 {
		opts.Duration = *duration
	}
	if *jobs < 0 {
		return fmt.Errorf("negative -jobs %d", *jobs)
	}
	opts.Workers = *jobs
	if *shards < 0 {
		return fmt.Errorf("negative -shards %d", *shards)
	}
	opts.Shards = *shards
	if *progress {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	opts.Ledger = *ledger
	if *checkpointDir != "" {
		if err := os.MkdirAll(*checkpointDir, 0o755); err != nil {
			return err
		}
		opts.CheckpointDir = *checkpointDir
		opts.CheckpointEvery = *checkpointEvr
	}
	opts.SelfTestViolation = *forceViolation

	// On the first SIGINT/SIGTERM the sweep drains gracefully: no new cells
	// start, in-flight checkpointed cells write a final snapshot, in-flight
	// uncheckpointed cells finish and land in the ledger, and the process
	// exits 130 with resume instructions. A second signal kills immediately.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	interrupt := make(chan struct{})
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "experiments: interrupt received, draining (^C again to kill)")
		close(interrupt)
		<-sigs
		os.Exit(1)
	}()
	opts.Interrupt = interrupt
	if *flightDir != "" {
		if err := os.MkdirAll(*flightDir, 0o755); err != nil {
			return err
		}
		opts.FlightDir = *flightDir
	}

	var live *obs.Live
	if *liveAddr != "" {
		var err error
		live, err = obs.NewLive(*liveAddr)
		if err != nil {
			return err
		}
		defer live.Close()
		fmt.Fprintf(out, "live debug endpoint on http://%s/\n", live.Addr())
		opts.OnRun = func(lo harness.LedgerOutput) {
			live.AddRun(lo.Kernel.Events, lo.Kernel.WallTime, lo.Telemetry)
		}
	}

	var csvDir string
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		csvDir = *outDir
	}

	start := time.Now()
	ran := 0
	for _, f := range figures {
		if *fig != "all" && *fig != f.name {
			continue
		}
		ran++
		t0 := time.Now()
		live.SetPhase("fig" + f.name)
		tbl, err := f.fn(opts)
		if err != nil {
			return fmt.Errorf("fig %s: %w", f.name, err)
		}
		if err := tbl.Render(out); err != nil {
			return err
		}
		if *plots {
			if err := tbl.RenderCharts(out); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "(fig %s regenerated in %v, %d kernel events, %.0f events/s)\n\n",
			f.name, time.Since(t0).Round(time.Second), tbl.Meta.Events, tbl.Meta.EventsPerSec())
		if csvDir != "" {
			if err := writeCSV(csvDir, "fig"+f.name+".csv", tbl.CSV); err != nil {
				return err
			}
			if err := tbl.Manifest().Write(
				filepath.Join(csvDir, "fig"+f.name+".manifest.json")); err != nil {
				return err
			}
		}
	}

	if *fig == "all" || *fig == "git-spt" {
		ran++
		t0 := time.Now()
		live.SetPhase("git-spt")
		tbl, err := harness.GitSpt(opts)
		if err != nil {
			return fmt.Errorf("git-spt: %w", err)
		}
		if err := tbl.Render(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "(git-spt regenerated in %v, %d kernel events, %.0f events/s)\n\n",
			time.Since(t0).Round(time.Second), tbl.Meta.Events, tbl.Meta.EventsPerSec())
		if csvDir != "" {
			if err := writeCSV(csvDir, "figgitspt.csv", tbl.CSV); err != nil {
				return err
			}
			if err := tbl.Manifest().Write(
				filepath.Join(csvDir, "figgitspt.manifest.json")); err != nil {
				return err
			}
		}
	}

	if *fig == "all" || *fig == "lifetime" {
		ran++
		t0 := time.Now()
		live.SetPhase("lifetime")
		tbl, err := harness.LifetimeStudy(opts)
		if err != nil {
			return fmt.Errorf("lifetime: %w", err)
		}
		if err := tbl.Render(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "(lifetime regenerated in %v, %d kernel events, %.0f events/s)\n\n",
			time.Since(t0).Round(time.Second), tbl.Meta.Events, tbl.Meta.EventsPerSec())
		if csvDir != "" {
			if err := writeCSV(csvDir, "figlifetime.csv", tbl.CSV); err != nil {
				return err
			}
			if err := tbl.Manifest().Write(
				filepath.Join(csvDir, "figlifetime.manifest.json")); err != nil {
				return err
			}
		}
	}

	if *fig == "all" || *fig == "chaos" {
		ran++
		t0 := time.Now()
		live.SetPhase("chaos")
		tbl, err := harness.Chaos(opts)
		if err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
		if err := tbl.Render(out); err != nil {
			return err
		}
		if v := tbl.TotalViolations(); v != 0 {
			fmt.Fprintf(out, "WARNING: %d protocol-invariant violations across the grid\n", v)
		}
		fmt.Fprintf(out, "(chaos grid regenerated in %v, %d kernel events, %.0f events/s)\n\n",
			time.Since(t0).Round(time.Second), tbl.Meta.Events, tbl.Meta.EventsPerSec())
		if csvDir != "" {
			if err := writeCSV(csvDir, "figchaos.csv", tbl.CSV); err != nil {
				return err
			}
			if err := tbl.Manifest().Write(
				filepath.Join(csvDir, "figchaos.manifest.json")); err != nil {
				return err
			}
		}
	}

	// The scale sweep runs thousands-of-nodes fields and is deliberately not
	// part of "all"; ask for it by name.
	if *fig == "scale" {
		ran++
		t0 := time.Now()
		scaleOpts := opts
		scaleOpts.Nodes = harness.ScaleNodes
		if *quick {
			scaleOpts.Nodes = harness.ScaleNodesQuick
		}
		if *scaleNodes != "" {
			ladder, err := parseNodeLadder(*scaleNodes)
			if err != nil {
				return fmt.Errorf("scale: %w", err)
			}
			scaleOpts.Nodes = ladder
		}
		if *big {
			scaleOpts.Nodes = append(append([]int(nil), scaleOpts.Nodes...), harness.ScaleNodesBig...)
		}
		live.SetPhase("scale")
		tbl, err := harness.Scale(scaleOpts)
		if err != nil {
			return fmt.Errorf("scale: %w", err)
		}
		if err := tbl.Render(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "(scale regenerated in %v, %d kernel events, %.0f events/s)\n\n",
			time.Since(t0).Round(time.Second), tbl.Meta.Events, tbl.Meta.EventsPerSec())
		if csvDir != "" {
			if err := writeCSV(csvDir, "figscale.csv", tbl.CSV); err != nil {
				return err
			}
			if err := tbl.Manifest().Write(
				filepath.Join(csvDir, "figscale.manifest.json")); err != nil {
				return err
			}
		}
	}

	// The repair ablation doubles the chaos grid (repair off and on) and,
	// like scale, is not part of "all"; ask for it by name.
	if *fig == "repair" {
		ran++
		t0 := time.Now()
		live.SetPhase("repair")
		tbl, err := harness.Repair(opts)
		if err != nil {
			return fmt.Errorf("repair: %w", err)
		}
		if err := tbl.Render(out); err != nil {
			return err
		}
		if v := tbl.TotalViolations(); v != 0 {
			fmt.Fprintf(out, "WARNING: %d protocol-invariant violations across the grid\n", v)
		}
		fmt.Fprintf(out, "(repair ablation regenerated in %v, %d kernel events, %.0f events/s)\n\n",
			time.Since(t0).Round(time.Second), tbl.Meta.Events, tbl.Meta.EventsPerSec())
		if csvDir != "" {
			if err := writeCSV(csvDir, "figrepair.csv", tbl.CSV); err != nil {
				return err
			}
			if err := tbl.Manifest().Write(
				filepath.Join(csvDir, "figrepair.manifest.json")); err != nil {
				return err
			}
		}
	}

	// The mobility grid replays the dynamics scenarios with repair off and
	// on and, like scale and repair, is not part of "all"; ask for it by
	// name. The CSV lands as results/mobility.csv — the artifact name the
	// experiment contract pins.
	if *fig == "mobility" {
		ran++
		t0 := time.Now()
		live.SetPhase("mobility")
		tbl, err := harness.Mobility(opts)
		if err != nil {
			return fmt.Errorf("mobility: %w", err)
		}
		if err := tbl.Render(out); err != nil {
			return err
		}
		if v := tbl.RepairOnViolations(); v != 0 {
			fmt.Fprintf(out, "WARNING: %d protocol-invariant violations on the repair-on arm\n", v)
		}
		fmt.Fprintf(out, "(mobility grid regenerated in %v, %d kernel events, %.0f events/s)\n\n",
			time.Since(t0).Round(time.Second), tbl.Meta.Events, tbl.Meta.EventsPerSec())
		if csvDir != "" {
			if err := writeCSV(csvDir, "mobility.csv", tbl.CSV); err != nil {
				return err
			}
			if err := tbl.Manifest().Write(
				filepath.Join(csvDir, "mobility.manifest.json")); err != nil {
				return err
			}
		}
	}

	live.SetPhase("done")
	fmt.Fprintf(out, "total: %d table(s) in %v\n", ran, time.Since(start).Round(time.Second))
	return nil
}

// parseNodeLadder parses a -scale-nodes override: comma-separated positive
// node counts, strictly ascending (Scale enforces the order; checking here
// gives the flag its own error message).
func parseNodeLadder(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	ladder := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad -scale-nodes entry %q: %w", p, err)
		}
		if n <= 0 {
			return nil, fmt.Errorf("non-positive -scale-nodes entry %d", n)
		}
		if len(ladder) > 0 && n <= ladder[len(ladder)-1] {
			return nil, fmt.Errorf("-scale-nodes must be strictly ascending, got %q", s)
		}
		ladder = append(ladder, n)
	}
	return ladder, nil
}

// writeCSV lands one results CSV atomically (buffer, temp file, fsync,
// rename) so an interrupted process never leaves a truncated artifact.
func writeCSV(dir, name string, write func(io.Writer) error) error {
	return harness.WriteCSV(dir, name, write)
}
