package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestExperimentsSingleFigure(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "5", "-fields", "1", "-duration", "20s", "-quick"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig5", "greedy", "opportunistic", "delivery ratio", "total: 1 table"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestExperimentsGitSpt(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "git-spt", "-fields", "2", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "git-spt") {
		t.Fatalf("missing table:\n%s", buf.String())
	}
}

func TestExperimentsCSVOutput(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "res")
	var buf bytes.Buffer
	err := run([]string{"-fig", "5", "-fields", "1", "-duration", "20s", "-quick", "-out", dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 || !strings.HasPrefix(lines[0], "figure,scheme") {
		t.Fatalf("csv malformed:\n%s", data)
	}

	// Every CSV gets a provenance manifest beside it.
	man, err := obs.ReadManifest(filepath.Join(dir, "fig5.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Figure != "fig5" || man.Runs == 0 || man.KernelEvents == 0 {
		t.Fatalf("manifest unfilled: %+v", man)
	}
	if man.TelemetryDigest == "" || len(man.Metrics) == 0 {
		t.Fatalf("manifest missing telemetry: %+v", man)
	}
}

func TestExperimentsPlotFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "5", "-fields", "1", "-duration", "20s", "-quick", "-plot"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "|") {
		t.Fatal("no chart drawn with -plot")
	}
}

func TestExperimentsUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "99"}, &buf)
	if err == nil {
		t.Fatal("unknown figure accepted")
	}
	// The error must name the bad figure and list the valid ones.
	for _, want := range []string{`"99"`, "git-spt", "chaos", "repair", "all"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err.Error(), want)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("unknown figure produced output before failing:\n%s", buf.String())
	}
}

func TestExperimentsRepairQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("repair ablation runs the chaos grid twice")
	}
	dir := filepath.Join(t.TempDir(), "res")
	var buf bytes.Buffer
	err := run([]string{"-fig", "repair", "-fields", "1", "-duration", "20s", "-quick", "-out", dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figrepair", "repair", "off", "on", "total: 1 table"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "figrepair.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 || !strings.HasPrefix(lines[0], "figure,scenario,repair") {
		t.Fatalf("csv malformed:\n%s", data)
	}
	if _, err := obs.ReadManifest(filepath.Join(dir, "figrepair.manifest.json")); err != nil {
		t.Fatal(err)
	}
}
