package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestExperimentsSingleFigure(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "5", "-fields", "1", "-duration", "20s", "-quick"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig5", "greedy", "opportunistic", "delivery ratio", "total: 1 table"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestExperimentsGitSpt(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "git-spt", "-fields", "2", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "git-spt") {
		t.Fatalf("missing table:\n%s", buf.String())
	}
}

func TestExperimentsCSVOutput(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "res")
	var buf bytes.Buffer
	err := run([]string{"-fig", "5", "-fields", "1", "-duration", "20s", "-quick", "-out", dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig5.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 || !strings.HasPrefix(lines[0], "figure,scheme") {
		t.Fatalf("csv malformed:\n%s", data)
	}

	// Every CSV gets a provenance manifest beside it.
	man, err := obs.ReadManifest(filepath.Join(dir, "fig5.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Figure != "fig5" || man.Runs == 0 || man.KernelEvents == 0 {
		t.Fatalf("manifest unfilled: %+v", man)
	}
	if man.TelemetryDigest == "" || len(man.Metrics) == 0 {
		t.Fatalf("manifest missing telemetry: %+v", man)
	}
}

func TestExperimentsPlotFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "5", "-fields", "1", "-duration", "20s", "-quick", "-plot"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "|") {
		t.Fatal("no chart drawn with -plot")
	}
}

func TestExperimentsUnknownFigure(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-fig", "99"}, &buf)
	if err == nil {
		t.Fatal("unknown figure accepted")
	}
	// The error must name the bad figure and list the valid ones.
	for _, want := range []string{`"99"`, "git-spt", "chaos", "repair", "all"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err.Error(), want)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("unknown figure produced output before failing:\n%s", buf.String())
	}
}

func TestParseNodeLadder(t *testing.T) {
	good := map[string][]int{
		"500":             {500},
		"500,5000":        {500, 5000},
		" 500, 1000,2000": {500, 1000, 2000},
	}
	for in, want := range good {
		got, err := parseNodeLadder(in)
		if err != nil {
			t.Fatalf("parseNodeLadder(%q): %v", in, err)
		}
		if len(got) != len(want) {
			t.Fatalf("parseNodeLadder(%q) = %v, want %v", in, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("parseNodeLadder(%q) = %v, want %v", in, got, want)
			}
		}
	}
	for _, bad := range []string{"", "abc", "500,,1000", "0", "-5", "1000,500", "500,500"} {
		if _, err := parseNodeLadder(bad); err == nil {
			t.Errorf("parseNodeLadder(%q) accepted", bad)
		}
	}
}

func TestExperimentsScaleNodesOverride(t *testing.T) {
	// -scale-nodes replaces the ladder; the tiny rung keeps the test fast,
	// and the CSV must carry the new bytes_per_node column with a nonzero
	// reading for every row.
	dir := filepath.Join(t.TempDir(), "res")
	var buf bytes.Buffer
	err := run([]string{"-fig", "scale", "-fields", "1", "-duration", "10s",
		"-scale-nodes", "150", "-jobs", "2", "-out", dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figscale.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 4 || !strings.HasPrefix(lines[0], "#") ||
		!strings.Contains(lines[1], ",bytes_per_node,") {
		t.Fatalf("csv missing comment or bytes_per_node column:\n%s", data)
	}
	for _, row := range lines[2:] {
		if !strings.HasPrefix(row, "figscale,150,") {
			t.Fatalf("row does not use the overridden rung:\n%s", row)
		}
		cols := strings.Split(row, ",")
		if cols[9] == "0" {
			t.Fatalf("bytes_per_node is zero:\n%s", row)
		}
	}
	man, err := obs.ReadManifest(filepath.Join(dir, "figscale.manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(man.BytesPerNode) != 1 || man.BytesPerNode[0] == 0 {
		t.Fatalf("manifest bytes_per_node unfilled: %+v", man.BytesPerNode)
	}
}

func TestExperimentsBadJobs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig", "5", "-quick", "-jobs", "-1"}, &buf); err == nil {
		t.Fatal("negative -jobs accepted")
	}
}

func TestExperimentsRepairQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("repair ablation runs the chaos grid twice")
	}
	dir := filepath.Join(t.TempDir(), "res")
	var buf bytes.Buffer
	err := run([]string{"-fig", "repair", "-fields", "1", "-duration", "20s", "-quick", "-out", dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figrepair", "repair", "off", "on", "total: 1 table"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "figrepair.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 || !strings.HasPrefix(lines[0], "figure,scenario,repair") {
		t.Fatalf("csv malformed:\n%s", data)
	}
	if _, err := obs.ReadManifest(filepath.Join(dir, "figrepair.manifest.json")); err != nil {
		t.Fatal(err)
	}
}
