package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/msg"
)

// runCLI executes the command with args, capturing stdout through a temp
// file (run takes *os.File so the field-map writer works unbuffered).
func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	f, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestCLIBasicRun(t *testing.T) {
	out, err := runCLI(t, "-nodes", "80", "-duration", "30s", "-seed", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scheme", "greedy", "delivery ratio", "avg dissipated energy"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIVerboseAndMap(t *testing.T) {
	out, err := runCLI(t, "-nodes", "80", "-duration", "30s", "-v", "-map")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"protocol sends by kind", "MAC:", "field map", "on-tree relay"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCLITrace(t *testing.T) {
	out, err := runCLI(t, "-nodes", "60", "-duration", "20s", "-trace", "reinforce")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "trace (") || !strings.Contains(out, "reinforce") {
		t.Errorf("trace output missing:\n%s", out)
	}
}

func TestCLIRTSCTS(t *testing.T) {
	if _, err := runCLI(t, "-nodes", "60", "-duration", "20s", "-rtscts"); err != nil {
		t.Fatal(err)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		{"-scheme", "bogus"},
		{"-placement", "bogus"},
		{"-agg", "bogus"},
		{"-trace", "bogus"},
		{"-nodes", "1"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseKinds(t *testing.T) {
	kinds, err := parseKinds("reinforce, data")
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 2 || kinds[0] != msg.KindReinforce || kinds[1] != msg.KindData {
		t.Fatalf("kinds = %v", kinds)
	}
	if _, err := parseKinds("nope"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
