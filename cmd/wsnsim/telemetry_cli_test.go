package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestCLITelemetryDump(t *testing.T) {
	out, err := runCLI(t, "-nodes", "60", "-duration", "20s", "-telemetry", "-v")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"telemetry (", "diffusion_exploratory_floods", "mac_data_tx", "sim_events", "kernel:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestCLITraceOutAndSnapshots(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ndjson")
	out, err := runCLI(t, "-nodes", "60", "-duration", "20s",
		"-trace-out", path, "-snapshot-every", "5s")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "trace written to") {
		t.Errorf("no trace-out confirmation:\n%s", out)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d := trace.NewDecoder(f)
	events, snaps := 0, 0
	for {
		rec, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.IsSnapshot {
			snaps++
		} else {
			events++
		}
	}
	if events == 0 || snaps == 0 {
		t.Fatalf("trace file has %d events, %d snapshots", events, snaps)
	}
}

func TestCLISnapshotEveryRequiresTraceOut(t *testing.T) {
	if _, err := runCLI(t, "-nodes", "60", "-duration", "10s", "-snapshot-every", "5s"); err == nil {
		t.Fatal("snapshot-every without trace-out accepted")
	}
}

func TestCLIPprof(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.pprof")
	if _, err := runCLI(t, "-nodes", "60", "-duration", "10s", "-pprof", path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("empty profile")
	}
}
