// Command wsnsim runs one packet-level sensor-network simulation and prints
// the paper's three metrics plus substrate diagnostics.
//
// Examples:
//
//	wsnsim -scheme greedy -nodes 350 -seed 3
//	wsnsim -scheme opportunistic -nodes 150 -failures
//	wsnsim -scheme greedy -sources 14 -agg linear -duration 120s
//	wsnsim -scheme greedy -nodes 80 -trace reinforce,negreinforce
//	wsnsim -scheme greedy -loss 0.1 -amnesia 10s -invariants
//	wsnsim -scheme opportunistic -partition 60s:100s -invariants
//	wsnsim -scheme greedy -mobility waypoint -speed 2 -repair -invariants
//	wsnsim -scheme greedy -join-frac 0.2 -join-window 80s -leave-every 20s
//	wsnsim -scheme greedy -telemetry
//	wsnsim -scheme greedy -loss 0.1 -trace-out run.ndjson -snapshot-every 20s
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/agg"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/diffusion"
	"repro/internal/failure"
	"repro/internal/geom"
	"repro/internal/msg"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	fmt.Fprintln(os.Stderr, "wsnsim:", err)
	if errors.Is(err, core.ErrInterrupted) {
		os.Exit(130)
	}
	os.Exit(1)
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("wsnsim", flag.ContinueOnError)
	var (
		scheme    = fs.String("scheme", "greedy", "aggregation scheme: greedy, opportunistic, greedy-eventcover, flooding, omniscient")
		nodes     = fs.Int("nodes", 150, "number of sensor nodes (paper: 50..350)")
		seed      = fs.Int64("seed", 1, "random seed (one seed = one generated field)")
		sources   = fs.Int("sources", 5, "number of sources")
		sinks     = fs.Int("sinks", 1, "number of sinks")
		placement = fs.String("placement", "corner", "source placement: corner or random")
		aggName   = fs.String("agg", "perfect", "aggregation function: perfect, linear, packing, timestamp, outline")
		duration  = fs.Duration("duration", 160*time.Second, "simulated time")
		failures  = fs.Bool("failures", false, "enable the paper's node-failure dynamics (20% off / 30 s)")
		traceArg  = fs.String("trace", "", "comma-separated message kinds to trace (e.g. reinforce,inccost)")
		verbose   = fs.Bool("v", false, "print per-kind message counts and MAC statistics")
		fieldMap  = fs.Bool("map", false, "draw the field and the final aggregation tree as ASCII art")
		rtscts    = fs.Bool("rtscts", false, "enable the 802.11 RTS/CTS handshake for unicast data")
		repair    = fs.Bool("repair", false, "enable the self-healing layer: link-quality estimation, control retransmission, localized path repair")
		battery   = fs.Float64("battery", 0, "per-node battery budget in joules (0 = unlimited); depleted nodes die permanently")
		shards    = fs.Int("shards", 0, "run on the sharded parallel kernel with this many spatial strips (0/1 = serial)")

		mobility     = fs.String("mobility", "", `mobility model: "waypoint" or "walk" ("" = static field)`)
		mobilityTick = fs.Duration("mobility-epoch", 0, "movement epoch (0 = model default, 1s)")
		speedMin     = fs.Float64("speed-min", 0, "waypoint leg-speed lower bound in m/s (0 = model default)")
		speed        = fs.Float64("speed", 0, "waypoint leg-speed upper bound in m/s (0 = model default)")
		pause        = fs.Duration("pause", -1, "waypoint pause at each destination (-1 = model default)")
		step         = fs.Float64("step", 0, "walk per-epoch step bound in meters (0 = model default)")
		mobileSinks  = fs.Bool("mobile-sinks", false, "let sinks move too (default: sinks stay pinned)")
		joinFrac     = fs.Float64("join-frac", 0, "fraction of nodes absent at start that cold-join during -join-window")
		joinWindow   = fs.Duration("join-window", 0, "window over which cold joins are drawn (required with -join-frac)")
		leaveEvery   = fs.Duration("leave-every", 0, "mean interval between permanent departures (0 = off)")

		loss        = fs.Float64("loss", 0, "i.i.d. per-reception link-loss probability (chaos layer)")
		burst       = fs.Bool("burst", false, "bursty Gilbert-Elliott channel instead of i.i.d. loss")
		asymFrac    = fs.Float64("asym-frac", 0, "fraction of directed links made asymmetric")
		asymDrop    = fs.Float64("asym-drop", 0.5, "extra drop probability on asymmetric links")
		amnesia     = fs.Duration("amnesia", 0, "mean interval between crash-with-amnesia events (0 = off)")
		amnesiaDown = fs.Duration("amnesia-down", 2*time.Second, "downtime after each amnesia crash")
		partition   = fs.String("partition", "", `diagonal field partition window, e.g. "60s:100s"`)
		invariants  = fs.Bool("invariants", false, "arm the runtime protocol-invariant checker")

		telemetry = fs.Bool("telemetry", false, "collect and print the metrics registry (protocol, MAC, kernel)")
		traceOut  = fs.String("trace-out", "", "write the full protocol trace as NDJSON to this file (see cmd/tracestat)")
		snapEvery = fs.Duration("snapshot-every", 0, "dump per-node protocol state into the NDJSON trace at this virtual-time interval (requires -trace-out)")
		pprofOut  = fs.String("pprof", "", "write a CPU profile of the run to this file")

		checkpoint      = fs.String("checkpoint", "", "crash-checkpoint file: snapshot the full run state here every -checkpoint-every of virtual time; SIGINT/SIGTERM drains to the next boundary, checkpoints, and exits 130")
		checkpointEvery = fs.Duration("checkpoint-every", 10*time.Second, "virtual-time interval between checkpoints (with -checkpoint)")
		resume          = fs.Bool("resume", false, "resume a killed or interrupted run from the -checkpoint file instead of starting fresh (flags must match the original run)")

		flightPath     = fs.String("flight", "", "arm the flight recorder; dump recent trace records to this file on an invariant violation or panic")
		flightCap      = fs.Int("flight-cap", 0, "flight-recorder ring capacity in records (0 = default)")
		liveAddr       = fs.String("live", "", `serve the live debug endpoint (status, /metrics, /debug/pprof) on this address, e.g. "localhost:6060"`)
		forceViolation = fs.Duration("force-violation", 0, "inject a synthetic invariant violation at this virtual time (arms -invariants; exercises the flight-dump path)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	var err error
	cfg.Scheme, err = core.ParseScheme(*scheme)
	if err != nil {
		return err
	}
	cfg.Nodes = *nodes
	cfg.Seed = *seed
	cfg.Duration = *duration
	cfg.Shards = *shards
	cfg.Workload.Sources = *sources
	cfg.Workload.Sinks = *sinks
	switch *placement {
	case "corner":
		cfg.Workload.Placement = workload.PlaceCorner
	case "random":
		cfg.Workload.Placement = workload.PlaceRandom
	default:
		return fmt.Errorf("unknown placement %q", *placement)
	}
	cfg.Diffusion.Agg, err = agg.ByName(*aggName)
	if err != nil {
		return err
	}
	if *forceViolation > 0 {
		*invariants = true // a violation drill needs the checker armed
	}
	cc := chaos.Config{
		Loss: chaos.LossConfig{
			Drop:              *loss,
			AsymmetryFraction: *asymFrac,
			AsymmetryDrop:     *asymDrop,
		},
		Amnesia:           chaos.AmnesiaConfig{MeanInterval: *amnesia, Downtime: *amnesiaDown},
		CheckInvariants:   *invariants,
		SelfTestViolation: *forceViolation,
	}
	if *burst {
		bc := chaos.DefaultBurstConfig()
		cc.Loss.Burst = &bc
	}
	if *partition != "" {
		p, err := parsePartition(*partition, cfg.FieldSide)
		if err != nil {
			return err
		}
		cc.Partitions = append(cc.Partitions, p)
	}
	chaosActive := *loss > 0 || *burst || *asymFrac > 0 || *amnesia > 0 ||
		*partition != "" || *invariants
	switch {
	case chaosActive:
		if *failures {
			// Express the wave schedule through the chaos engine so it
			// composes with the other faults (Config forbids setting both).
			fc := failure.DefaultConfig()
			cc.Waves = &fc
		}
		cfg.Chaos = &cc
	case *failures:
		fc := failure.DefaultConfig()
		cfg.Failures = &fc
	}
	if *rtscts {
		cfg.MAC.UseRTSCTS = true
		cfg.MAC.RTSThreshold = 64
	}
	if *repair {
		cfg.Diffusion.Repair = diffusion.DefaultRepairParams()
	}
	cfg.BatteryJ = *battery
	if *mobility != "" {
		model, err := topology.ParseMobilityModel(*mobility)
		if err != nil {
			return err
		}
		if model != topology.MobilityNone {
			mc := topology.DefaultMobilityConfig(model)
			if *mobilityTick > 0 {
				mc.Epoch = *mobilityTick
			}
			if *speedMin > 0 {
				mc.SpeedMin = *speedMin
			}
			if *speed > 0 {
				mc.SpeedMax = *speed
				if mc.SpeedMin > mc.SpeedMax {
					mc.SpeedMin = mc.SpeedMax
				}
			}
			if *pause >= 0 {
				mc.Pause = *pause
			}
			if *step > 0 {
				mc.Step = *step
			}
			mc.MobileSinks = *mobileSinks
			cfg.Mobility = mc
		}
	}
	if *joinFrac > 0 || *leaveEvery > 0 {
		cfg.Churn = failure.ChurnConfig{
			JoinFraction:  *joinFrac,
			JoinWindow:    *joinWindow,
			LeaveInterval: *leaveEvery,
		}
	}

	var tracers []trace.Sink
	var rec *trace.Recorder
	if *traceArg != "" {
		kinds, err := parseKinds(*traceArg)
		if err != nil {
			return err
		}
		rec = trace.NewRecorder(1 << 16)
		rec.SetFilter(trace.KindFilter(kinds...))
		tracers = append(tracers, rec)
	}
	var nd *trace.FileNDJSON
	if *traceOut != "" {
		if *resume {
			// Reopen without truncating: Restore rewinds the file to the
			// byte offset recorded in the checkpoint and appends from there.
			nd, err = trace.ResumeNDJSONFile(*traceOut)
		} else {
			nd, err = trace.NewNDJSONFile(*traceOut)
		}
		if err != nil {
			return err
		}
		defer nd.Close()
		tracers = append(tracers, nd)
	}
	switch len(tracers) {
	case 0:
	case 1:
		cfg.Tracer = tracers[0]
	default:
		cfg.Tracer = trace.MultiSink(tracers...)
	}

	if *snapEvery > 0 && nd == nil {
		return fmt.Errorf("-snapshot-every needs -trace-out for the snapshots to land somewhere")
	}
	if *telemetry || *snapEvery > 0 {
		cfg.Telemetry = &obs.Config{SnapshotEvery: *snapEvery}
	}

	cfg.FlightPath = *flightPath
	cfg.FlightCapacity = *flightCap

	var live *obs.Live
	if *liveAddr != "" {
		live, err = obs.NewLive(*liveAddr)
		if err != nil {
			return err
		}
		defer live.Close()
		fmt.Fprintf(out, "live debug endpoint on http://%s/\n", live.Addr())
	}

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume needs -checkpoint to know where the snapshot lives")
	}
	if *checkpoint != "" {
		cfg.CheckpointPath = *checkpoint
		cfg.CheckpointEvery = *checkpointEvery
		// First signal: drain to the next checkpoint boundary, snapshot, and
		// exit 130 with a resume hint. Second signal: kill immediately.
		sigs := make(chan os.Signal, 2)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sigs)
		interrupt := make(chan struct{})
		go func() {
			<-sigs
			fmt.Fprintln(os.Stderr, "wsnsim: interrupt received, draining to a checkpoint (^C again to kill)")
			close(interrupt)
			<-sigs
			os.Exit(1)
		}()
		cfg.Interrupt = interrupt
	}

	live.SetPhase("simulating")
	var res core.Output
	if *resume {
		res, err = core.Restore(*checkpoint, cfg)
	} else {
		res, err = core.Run(cfg)
	}
	if errors.Is(err, core.ErrInterrupted) {
		fmt.Fprintf(out, "interrupted: checkpoint written to %s\nresume with the same command plus -resume\n", *checkpoint)
		return err
	}
	if err != nil {
		return err
	}
	live.SetPhase("reporting")
	live.AddRun(res.Kernel.Events, res.Kernel.WallTime, res.Telemetry)

	m := res.Metrics
	fmt.Fprintf(out, "scheme                      %s\n", m.Scheme)
	fmt.Fprintf(out, "nodes                       %d (density %.1f neighbors)\n", m.Nodes, m.Density)
	fmt.Fprintf(out, "workload                    %d sources, %d sinks, %s placement, %s aggregation\n",
		*sources, *sinks, *placement, *aggName)
	fmt.Fprintf(out, "events generated            %d\n", m.GeneratedEvents)
	fmt.Fprintf(out, "distinct events delivered   %d\n", m.DeliveredEvents)
	fmt.Fprintf(out, "delivery ratio              %.3f\n", m.DeliveryRatio)
	fmt.Fprintf(out, "average delay               %.3f s\n", m.AvgDelay)
	fmt.Fprintf(out, "  delivery latency          p50 %.3f s, p95 %.3f s, p99 %.3f s\n",
		m.DelayP50, m.DelayP95, m.DelayP99)
	fmt.Fprintf(out, "  tree depth                %.1f hops mean, %d max (fan-in up to %d)\n",
		m.MeanDepth, m.MaxDepth, m.MaxFanIn)
	fmt.Fprintf(out, "avg dissipated energy       %.6f J/node/event\n", m.AvgDissipatedEnergy)
	fmt.Fprintf(out, "  communication component   %.6f J/node/event\n", m.AvgCommEnergy)
	fmt.Fprintf(out, "  network totals            %.2f J total, %.2f J tx+rx\n", m.TotalEnergy, m.CommEnergy)
	fmt.Fprintf(out, "  hottest node              %.4f J tx+rx (%.1fx the mean)\n",
		m.Concentration.MaxNodeJ, m.Concentration.PeakToMean)
	if *battery > 0 {
		fmt.Fprintf(out, "battery deaths              %d (first at %v)\n",
			res.Lifetime.Deaths, res.Lifetime.FirstDeath.Round(time.Millisecond))
	}

	if *verbose {
		fmt.Fprintf(out, "\nprotocol sends by kind:\n")
		for k := msg.KindInterest; k <= msg.KindRepairProbe; k++ {
			if n := res.Sent[k]; n > 0 {
				fmt.Fprintf(out, "  %-14s %d\n", k, n)
			}
		}
		st := res.MAC
		fmt.Fprintf(out, "\nMAC: %d frames (%d ACKs), %d delivered, %d collisions, %d retries, %d backoffs, %d bytes on air\n",
			st.DataTx, st.AckTx, st.Delivered, st.Collisions, st.Retries, st.Backoffs, st.BytesOnAir)
		for reason, n := range st.Drops {
			fmt.Fprintf(out, "  drops[%s] = %d\n", reason, n)
		}
		k := res.Kernel
		fmt.Fprintf(out, "kernel: %d events in %v (%.0f events/s), queue high water %d\n",
			k.Events, k.WallTime.Round(time.Millisecond), k.EventsPerSec(), k.QueueHighWater)
		if ss := res.Shards; ss != nil {
			fmt.Fprintf(out, "shards: %d strips (requested %d), delta %v, %d windows, %d cross-shard mails (%d clamped, mailbox high water %d)\n",
				ss.Shards, ss.Requested, ss.Delta, ss.Windows, ss.Mails, ss.Clamped, ss.MailboxHighWater)
			for i := range ss.Events {
				fmt.Fprintf(out, "  shard %d: %d events, busy %v, stall %v\n",
					i, ss.Events[i], ss.Busy[i].Round(time.Millisecond), ss.Stall[i].Round(time.Millisecond))
			}
		}
	}

	if rep := res.Chaos; rep != nil {
		fmt.Fprintf(out, "\nchaos: %d link losses, %d crashes\n", rep.LinkLoss, rep.Crashes)
		if rec := rep.Recovery; rec != nil && rec.Faults > 0 {
			fmt.Fprintf(out, "  faults                    %d (%d repaired)\n", rec.Faults, rec.Repaired)
			fmt.Fprintf(out, "  mean time to repair       %v (max %v)\n",
				rec.MeanTimeToRepair.Round(time.Millisecond), rec.MaxTimeToRepair.Round(time.Millisecond))
			fmt.Fprintf(out, "  mean dip depth            %.2f\n", rec.MeanDipDepth)
			fmt.Fprintf(out, "  availability              %.3f\n", rec.Availability)
			if rec.OutageTime > 0 {
				fmt.Fprintf(out, "  outage time               %v (%d generated, ~%d lost during outages)\n",
					rec.OutageTime.Round(time.Millisecond), rec.GeneratedDuringOutage, rec.LostDuringOutage)
			}
			for _, b := range rec.TTRBuckets {
				if b.Count == 0 {
					continue
				}
				label := "overflow"
				if b.UpTo != 0 {
					label = "<=" + b.UpTo.String()
				}
				fmt.Fprintf(out, "  ttr %-21s %d\n", label, b.Count)
			}
		}
		if *invariants {
			fmt.Fprintf(out, "  invariant violations      %d\n", rep.ViolationCount)
			for _, v := range rep.Violations {
				fmt.Fprintf(out, "    %v\n", v)
			}
		}
	}

	if mob := res.Mobility; mob != nil {
		fmt.Fprintf(out, "\nmobility: %d epochs, %d link changes, %.0f m traveled\n",
			mob.Epochs, mob.LinkChanges, mob.TotalDistance)
		if mob.Epochs > 0 {
			fmt.Fprintf(out, "  node speed                %.2f m/s mean, %.2f max\n",
				mob.MeanSpeed, mob.MaxSpeed)
			for _, b := range mob.SpeedBuckets {
				if b.Nodes == 0 {
					continue
				}
				label := fmt.Sprintf("<=%.1f m/s", b.UpTo)
				if b.Last {
					label = fmt.Sprintf("> %.1f m/s", b.UpTo)
				}
				fmt.Fprintf(out, "  %-12s %3d nodes, %.4f J tx+rx each\n",
					label, b.Nodes, b.MeanCommJ)
			}
		}
		if mob.Joins > 0 || mob.Departures > 0 {
			fmt.Fprintf(out, "  churn                     %d joins, %d departures\n",
				mob.Joins, mob.Departures)
		}
	}

	if rs := res.Repair; rs != nil {
		fmt.Fprintf(out, "\nself-healing: %d watchdog fires, %d re-reinforcements, %d probes (%d replies)\n",
			rs.WatchdogFires, rs.Reinforces, rs.Probes, rs.ProbeReplies)
		fmt.Fprintf(out, "  %d control retransmissions, %d data rebuffers, %d fallback broadcasts\n",
			rs.CtrlRetries, rs.DataRebuffers, rs.FallbackBroadcasts)
	}

	if *fieldMap {
		if err := renderMap(out, cfg, res); err != nil {
			return err
		}
	}

	if *telemetry {
		printTelemetry(out, res.Telemetry)
	}

	if rec != nil {
		fmt.Fprintf(out, "\ntrace (%d events, newest %d retained):\n", rec.Total(), len(rec.Events()))
		for _, e := range rec.Events() {
			fmt.Fprintln(out, e)
		}
	}
	if nd != nil {
		if err := nd.Close(); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Fprintf(out, "\ntrace written to %s (inspect with tracestat)\n", *traceOut)
	}
	if fr := res.Flight; fr != nil {
		switch {
		case fr.Err != nil:
			fmt.Fprintf(out, "\nflight recorder: dump to %s failed: %v\n", fr.Path, fr.Err)
		case fr.Dumped:
			fmt.Fprintf(out, "\nflight recorder: dumped %d of %d records to %s (inspect with tracestat)\n",
				fr.Records, fr.Total, fr.Path)
		default:
			fmt.Fprintf(out, "\nflight recorder: armed, no violation — nothing dumped (%d records buffered)\n",
				fr.Records)
		}
	}
	return nil
}

// printTelemetry dumps the registry snapshot, one aligned line per metric.
func printTelemetry(w io.Writer, metrics []obs.Metric) {
	fmt.Fprintf(w, "\ntelemetry (%d metrics):\n", len(metrics))
	for _, m := range metrics {
		name := m.Name
		if m.Labels != "" {
			name += "{" + m.Labels + "}"
		}
		switch m.Kind {
		case obs.KindGauge:
			fmt.Fprintf(w, "  %-55s %14.4g (max %.4g)\n", name, m.Value, m.Max)
		case obs.KindHistogram:
			mean := 0.0
			if m.Count > 0 {
				mean = m.Sum / float64(m.Count)
			}
			fmt.Fprintf(w, "  %-55s n=%-10d mean=%.2f\n", name, m.Count, mean)
		default:
			fmt.Fprintf(w, "  %-55s %14.0f\n", name, m.Value)
		}
	}
}

// renderMap draws the field with the final aggregation tree(s).
func renderMap(w io.Writer, cfg core.Config, res core.Output) error {
	onTree := map[topology.NodeID]bool{}
	links := 0
	for _, tree := range res.Trees {
		for _, l := range tree {
			onTree[l[0]] = true
			onTree[l[1]] = true
			links++
		}
	}
	roles := map[topology.NodeID]rune{}
	for _, s := range res.Assignment.Sources {
		roles[s] = 'o'
	}
	for _, s := range res.Assignment.Sinks {
		roles[s] = 'S'
	}
	m := plot.FieldMap{
		Title: fmt.Sprintf("\nfield map (%d nodes, %d tree links)", len(res.Positions), links),
		MinX:  0, MinY: 0, MaxX: cfg.FieldSide, MaxY: cfg.FieldSide,
		Legend: map[rune]string{
			'S': "sink", 'o': "source", '*': "on-tree relay", '.': "idle node",
		},
	}
	for id, p := range res.Positions {
		nd := plot.FieldNode{X: p.X, Y: p.Y, Mark: '.'}
		if onTree[topology.NodeID(id)] {
			nd.Mark = '*'
		}
		if r, ok := roles[topology.NodeID(id)]; ok {
			nd.Mark = r
		}
		m.Nodes = append(m.Nodes, nd)
	}
	return m.Render(w)
}

// parsePartition turns "start:end" into a diagonal cut across the square
// field for that time window.
func parsePartition(arg string, fieldSide float64) (chaos.Partition, error) {
	var p chaos.Partition
	parts := strings.SplitN(arg, ":", 2)
	if len(parts) != 2 {
		return p, fmt.Errorf(`partition %q: want "start:end", e.g. "60s:100s"`, arg)
	}
	start, err := time.ParseDuration(strings.TrimSpace(parts[0]))
	if err != nil {
		return p, fmt.Errorf("partition start: %w", err)
	}
	end, err := time.ParseDuration(strings.TrimSpace(parts[1]))
	if err != nil {
		return p, fmt.Errorf("partition end: %w", err)
	}
	m := fieldSide * 0.05
	p = chaos.Partition{
		Start: start, End: end,
		A: geom.Point{X: -m, Y: fieldSide + m},
		B: geom.Point{X: fieldSide + m, Y: -m},
	}
	return p, p.Validate()
}

func parseKinds(arg string) ([]msg.Kind, error) {
	var kinds []msg.Kind
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		found := false
		for k := msg.KindInterest; k <= msg.KindRepairProbe; k++ {
			if k.String() == name {
				kinds = append(kinds, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown message kind %q", name)
		}
	}
	return kinds, nil
}
