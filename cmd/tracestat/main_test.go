package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// genTrace runs a 150-node chaos simulation with full tracing and returns
// the NDJSON path plus the run's telemetry snapshot.
func genTrace(t *testing.T) (string, []obs.Metric) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.ndjson")
	nd, err := trace.NewNDJSONFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig()
	cfg.Seed = 5
	cfg.Nodes = 150
	cfg.Duration = 60 * time.Second
	cfg.Chaos = &chaos.Config{Loss: chaos.LossConfig{Drop: 0.10}, CheckInvariants: true}
	cfg.Tracer = nd
	cfg.Telemetry = &obs.Config{SnapshotEvery: 20 * time.Second}

	out, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Close(); err != nil {
		t.Fatal(err)
	}
	return path, out.Telemetry
}

// TestChaosRunRoundTrip is the subsystem's acceptance path: a 150-node run
// under injected loss produces a trace tracestat can read back, reporting
// nonzero drops, and telemetry with nonzero set-cover and truncation
// counters.
func TestChaosRunRoundTrip(t *testing.T) {
	path, telemetry := genTrace(t)

	for _, name := range []string{"diffusion_setcover_calls", "diffusion_truncation_prunes"} {
		if v := obs.Value(telemetry, name); v <= 0 {
			t.Errorf("%s = %v, want > 0", name, v)
		}
	}

	var buf bytes.Buffer
	if err := run([]string{"-top", "5", "-edges", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"events over", "snapshots", "drops by reason", "chaos-loss",
		"busiest 5", "aggregation-tree edges", " -> ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Nonzero drop total: "sends N, receives N, drops N" with N > 0.
	m := regexp.MustCompile(`drops (\d+)`).FindStringSubmatch(out)
	if m == nil || m[1] == "0" {
		t.Fatalf("no drops reported under 10%% loss:\n%s", out)
	}
	// The tree survives reconstruction: at least one interest with edges.
	em := regexp.MustCompile(`interest 0: (\d+) aggregation-tree edges`).FindStringSubmatch(out)
	if em == nil || em[1] == "0" {
		t.Fatalf("no tree edges reconstructed:\n%s", out)
	}
}

func TestTracestatUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("no input file accepted")
	}
	if err := run([]string{filepath.Join(t.TempDir(), "missing.ndjson")}, &buf); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestTracestatEmptyTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.ndjson")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{path}, &buf)
	if err == nil {
		t.Fatal("empty trace accepted")
	}
	if !strings.Contains(err.Error(), "no trace records") {
		t.Fatalf("error = %q, want a no-trace-records explanation", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty trace produced a report:\n%s", buf.String())
	}
}

func TestTracestatTruncatedTrace(t *testing.T) {
	full, _ := genTrace(t)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file mid-line: the decoder must report a parse error with a
	// line number, not silently summarize the prefix.
	cut := bytes.LastIndexByte(data[:len(data)/2], '\n') + 10
	path := filepath.Join(t.TempDir(), "truncated.ndjson")
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = run([]string{path}, &buf)
	if err == nil {
		t.Fatal("truncated trace accepted")
	}
	if !strings.Contains(err.Error(), "line ") {
		t.Fatalf("error = %q, want a line-numbered parse error", err)
	}
}
