// Command tracestat summarizes an NDJSON protocol trace written by
// wsnsim -trace-out: traffic totals by operation and message kind, loss
// broken down by reason, the busiest nodes, and the aggregation-tree edge
// set reconstructed from the reinforcement stream.
//
// Examples:
//
//	wsnsim -scheme greedy -loss 0.1 -trace-out run.ndjson
//	tracestat run.ndjson
//	tracestat -top 20 -edges run.ndjson
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/msg"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
}

// kindRow accumulates per-message-kind traffic.
type kindRow struct {
	sends, recvs, drops int
}

// edge is one directed aggregation-tree link: data flows from -> to.
type edge struct {
	from, to topology.NodeID
}

// stats is everything one pass over the trace accumulates.
type stats struct {
	events, snapshots   int
	sends, recvs, drops int
	repairs             int
	kinds               map[msg.Kind]*kindRow
	dropReasons         map[trace.DropReason]int
	nodeTraffic         map[topology.NodeID]int
	// trees maps interest -> live edge set. A received reinforcement at
	// node n from downstream neighbor p creates the data link n -> p; a
	// received negative reinforcement tears it down again, so the final
	// set is the tree standing when the trace ended.
	trees map[msg.InterestID]map[edge]bool
	// firstAt/lastAt bound the trace's virtual-time span.
	firstAt, lastAt int64
}

func newStats() *stats {
	return &stats{
		kinds:       make(map[msg.Kind]*kindRow),
		dropReasons: make(map[trace.DropReason]int),
		nodeTraffic: make(map[topology.NodeID]int),
		trees:       make(map[msg.InterestID]map[edge]bool),
	}
}

func (s *stats) kind(k msg.Kind) *kindRow {
	r := s.kinds[k]
	if r == nil {
		r = &kindRow{}
		s.kinds[k] = r
	}
	return r
}

func (s *stats) addEvent(e trace.Event) {
	s.events++
	if s.events == 1 || int64(e.At) < s.firstAt {
		s.firstAt = int64(e.At)
	}
	if int64(e.At) > s.lastAt {
		s.lastAt = int64(e.At)
	}
	s.nodeTraffic[e.Node]++
	switch e.Op {
	case trace.OpSend:
		s.sends++
		s.kind(e.Kind).sends++
	case trace.OpReceive:
		s.recvs++
		s.kind(e.Kind).recvs++
		switch e.Kind {
		case msg.KindReinforce:
			t := s.trees[e.Interest]
			if t == nil {
				t = make(map[edge]bool)
				s.trees[e.Interest] = t
			}
			t[edge{from: e.Node, to: e.Peer}] = true
		case msg.KindNegReinforce:
			delete(s.trees[e.Interest], edge{from: e.Node, to: e.Peer})
		}
	case trace.OpDrop:
		s.drops++
		s.kind(e.Kind).drops++
		s.dropReasons[e.Reason]++
	case trace.OpRepair:
		s.repairs++
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracestat", flag.ContinueOnError)
	var (
		top   = fs.Int("top", 10, "how many of the busiest nodes to list")
		edges = fs.Bool("edges", false, "print the reconstructed tree edge lists")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: tracestat [-top N] [-edges] trace.ndjson...")
	}

	for _, path := range fs.Args() {
		s, err := scan(path)
		if err != nil {
			return err
		}
		if s.events == 0 && s.snapshots == 0 {
			return fmt.Errorf("%s: no trace records (empty or not an NDJSON trace)", path)
		}
		if err := report(out, path, s, *top, *edges); err != nil {
			return err
		}
	}
	return nil
}

func scan(path string) (*stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s := newStats()
	d := trace.NewDecoder(f)
	for {
		rec, err := d.Next()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if rec.IsSnapshot {
			s.snapshots++
			continue
		}
		s.addEvent(rec.Event)
	}
}

func report(w io.Writer, path string, s *stats, top int, edges bool) error {
	span := float64(s.lastAt-s.firstAt) / 1e9
	fmt.Fprintf(w, "== %s ==\n", path)
	fmt.Fprintf(w, "%d events over %.1f virtual seconds, %d snapshots\n",
		s.events, span, s.snapshots)
	fmt.Fprintf(w, "sends %d, receives %d, drops %d", s.sends, s.recvs, s.drops)
	if s.repairs > 0 {
		fmt.Fprintf(w, ", repairs %d", s.repairs)
	}
	fmt.Fprint(w, "\n\n")

	fmt.Fprintf(w, "%-14s %10s %10s %10s\n", "kind", "sends", "recvs", "drops")
	kinds := make([]msg.Kind, 0, len(s.kinds))
	for k := range s.kinds {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		r := s.kinds[k]
		fmt.Fprintf(w, "%-14s %10d %10d %10d\n", k, r.sends, r.recvs, r.drops)
	}

	if len(s.dropReasons) > 0 {
		fmt.Fprintf(w, "\ndrops by reason:\n")
		reasons := make([]trace.DropReason, 0, len(s.dropReasons))
		for r := range s.dropReasons {
			reasons = append(reasons, r)
		}
		sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
		for _, r := range reasons {
			fmt.Fprintf(w, "  %-14s %10d\n", r, s.dropReasons[r])
		}
	}

	if top > 0 && len(s.nodeTraffic) > 0 {
		type nt struct {
			node topology.NodeID
			n    int
		}
		busy := make([]nt, 0, len(s.nodeTraffic))
		for id, n := range s.nodeTraffic {
			busy = append(busy, nt{id, n})
		}
		sort.Slice(busy, func(i, j int) bool {
			if busy[i].n != busy[j].n {
				return busy[i].n > busy[j].n
			}
			return busy[i].node < busy[j].node
		})
		if top > len(busy) {
			top = len(busy)
		}
		fmt.Fprintf(w, "\nbusiest %d of %d nodes (events touching the node):\n", top, len(busy))
		for _, b := range busy[:top] {
			fmt.Fprintf(w, "  node %-5d %10d\n", b.node, b.n)
		}
	}

	iids := make([]msg.InterestID, 0, len(s.trees))
	for iid := range s.trees {
		iids = append(iids, iid)
	}
	sort.Slice(iids, func(i, j int) bool { return iids[i] < iids[j] })
	for _, iid := range iids {
		t := s.trees[iid]
		fmt.Fprintf(w, "\ninterest %d: %d aggregation-tree edges standing at trace end\n",
			iid, len(t))
		if !edges {
			continue
		}
		list := make([]edge, 0, len(t))
		for e := range t {
			list = append(list, e)
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].from != list[j].from {
				return list[i].from < list[j].from
			}
			return list[i].to < list[j].to
		})
		for _, e := range list {
			fmt.Fprintf(w, "  %d -> %d\n", e.from, e.to)
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
