// Command tracestat summarizes an NDJSON protocol trace written by
// wsnsim -trace-out (or dumped by the flight recorder): traffic totals by
// operation and message kind, loss broken down by reason, the busiest nodes,
// delivery-lineage latency percentiles and hop depths, and the
// aggregation-tree edge set reconstructed from the reinforcement stream.
//
// Examples:
//
//	wsnsim -scheme greedy -loss 0.1 -trace-out run.ndjson
//	tracestat run.ndjson
//	tracestat -top 20 -edges run.ndjson
//	tracestat -json run.ndjson | jq .delivery
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/msg"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
}

// kindRow accumulates per-message-kind traffic.
type kindRow struct {
	sends, recvs, drops int
}

// edge is one directed aggregation-tree link: data flows from -> to.
type edge struct {
	from, to topology.NodeID
}

// stats is everything one pass over the trace accumulates.
type stats struct {
	events, snapshots   int
	sends, recvs, drops int
	repairs             int
	kinds               map[msg.Kind]*kindRow
	dropReasons         map[trace.DropReason]int
	nodeTraffic         map[topology.NodeID]int
	// Delivery lineage (OpDeliver events): per-delivery end-to-end delays
	// in seconds, a hop-count histogram, and the widest aggregation fan-in.
	delivers int
	delays   []float64
	hopHist  map[int]int
	hopSum   int
	maxHops  int
	maxFanIn int
	// trees maps interest -> live edge set. A received reinforcement at
	// node n from downstream neighbor p creates the data link n -> p; a
	// received negative reinforcement tears it down again, so the final
	// set is the tree standing when the trace ended.
	trees map[msg.InterestID]map[edge]bool
	// firstAt/lastAt bound the trace's virtual-time span.
	firstAt, lastAt int64
}

func newStats() *stats {
	return &stats{
		kinds:       make(map[msg.Kind]*kindRow),
		dropReasons: make(map[trace.DropReason]int),
		nodeTraffic: make(map[topology.NodeID]int),
		trees:       make(map[msg.InterestID]map[edge]bool),
		hopHist:     make(map[int]int),
	}
}

func (s *stats) kind(k msg.Kind) *kindRow {
	r := s.kinds[k]
	if r == nil {
		r = &kindRow{}
		s.kinds[k] = r
	}
	return r
}

func (s *stats) addEvent(e trace.Event) {
	s.events++
	if s.events == 1 || int64(e.At) < s.firstAt {
		s.firstAt = int64(e.At)
	}
	if int64(e.At) > s.lastAt {
		s.lastAt = int64(e.At)
	}
	s.nodeTraffic[e.Node]++
	switch e.Op {
	case trace.OpSend:
		s.sends++
		s.kind(e.Kind).sends++
	case trace.OpReceive:
		s.recvs++
		s.kind(e.Kind).recvs++
		switch e.Kind {
		case msg.KindReinforce:
			t := s.trees[e.Interest]
			if t == nil {
				t = make(map[edge]bool)
				s.trees[e.Interest] = t
			}
			t[edge{from: e.Node, to: e.Peer}] = true
		case msg.KindNegReinforce:
			delete(s.trees[e.Interest], edge{from: e.Node, to: e.Peer})
		}
	case trace.OpDrop:
		s.drops++
		s.kind(e.Kind).drops++
		s.dropReasons[e.Reason]++
	case trace.OpRepair:
		s.repairs++
	case trace.OpDeliver:
		s.delivers++
		s.delays = append(s.delays, e.Delay.Seconds())
		s.hopHist[e.Hops]++
		s.hopSum += e.Hops
		if e.Hops > s.maxHops {
			s.maxHops = e.Hops
		}
		if e.FanIn > s.maxFanIn {
			s.maxFanIn = e.FanIn
		}
	}
}

// percentile returns the nearest-rank percentile of sorted (ascending).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracestat", flag.ContinueOnError)
	var (
		top    = fs.Int("top", 10, "how many of the busiest nodes to list")
		edges  = fs.Bool("edges", false, "print the reconstructed tree edge lists")
		asJSON = fs.Bool("json", false, "emit one machine-readable JSON summary per trace instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: tracestat [-top N] [-edges] [-json] trace.ndjson...")
	}

	for _, path := range fs.Args() {
		s, err := scan(path)
		if err != nil {
			return err
		}
		if s.events == 0 && s.snapshots == 0 {
			return fmt.Errorf("%s: no trace records (empty or not an NDJSON trace)", path)
		}
		if *asJSON {
			if err := reportJSON(out, path, s, *top); err != nil {
				return err
			}
			continue
		}
		if err := report(out, path, s, *top, *edges); err != nil {
			return err
		}
	}
	return nil
}

// JSON summary shapes (-json mode). All delays are seconds.
type jsonKindRow struct {
	Kind  string `json:"kind"`
	Sends int    `json:"sends"`
	Recvs int    `json:"recvs"`
	Drops int    `json:"drops"`
}

type jsonHopBucket struct {
	Hops  int `json:"hops"`
	Count int `json:"count"`
}

type jsonDelivery struct {
	Count    int             `json:"count"`
	DelayP50 float64         `json:"delay_p50_s"`
	DelayP95 float64         `json:"delay_p95_s"`
	DelayP99 float64         `json:"delay_p99_s"`
	MeanHops float64         `json:"mean_hops"`
	MaxHops  int             `json:"max_hops"`
	MaxFanIn int             `json:"max_fan_in"`
	HopHist  []jsonHopBucket `json:"hop_histogram,omitempty"`
}

type jsonNode struct {
	Node   topology.NodeID `json:"node"`
	Events int             `json:"events"`
}

type jsonTree struct {
	Interest msg.InterestID `json:"interest"`
	Edges    int            `json:"edges"`
}

type jsonSummary struct {
	Path        string         `json:"path"`
	Events      int            `json:"events"`
	Snapshots   int            `json:"snapshots"`
	SpanSeconds float64        `json:"span_seconds"`
	Sends       int            `json:"sends"`
	Recvs       int            `json:"recvs"`
	Drops       int            `json:"drops"`
	Repairs     int            `json:"repairs"`
	Kinds       []jsonKindRow  `json:"kinds,omitempty"`
	DropReasons map[string]int `json:"drop_reasons,omitempty"`
	Busiest     []jsonNode     `json:"busiest_nodes,omitempty"`
	Trees       []jsonTree     `json:"trees,omitempty"`
	Delivery    *jsonDelivery  `json:"delivery,omitempty"`
}

func reportJSON(w io.Writer, path string, s *stats, top int) error {
	sum := jsonSummary{
		Path:        path,
		Events:      s.events,
		Snapshots:   s.snapshots,
		SpanSeconds: float64(s.lastAt-s.firstAt) / 1e9,
		Sends:       s.sends,
		Recvs:       s.recvs,
		Drops:       s.drops,
		Repairs:     s.repairs,
	}
	for _, k := range sortedKinds(s) {
		r := s.kinds[k]
		sum.Kinds = append(sum.Kinds, jsonKindRow{
			Kind: k.String(), Sends: r.sends, Recvs: r.recvs, Drops: r.drops,
		})
	}
	if len(s.dropReasons) > 0 {
		sum.DropReasons = make(map[string]int, len(s.dropReasons))
		for r, n := range s.dropReasons {
			sum.DropReasons[r.String()] = n
		}
	}
	for _, b := range busiestNodes(s, top) {
		sum.Busiest = append(sum.Busiest, jsonNode{Node: b.node, Events: b.n})
	}
	for _, iid := range sortedInterests(s) {
		sum.Trees = append(sum.Trees, jsonTree{Interest: iid, Edges: len(s.trees[iid])})
	}
	if s.delivers > 0 {
		sorted := append([]float64(nil), s.delays...)
		sort.Float64s(sorted)
		d := &jsonDelivery{
			Count:    s.delivers,
			DelayP50: percentile(sorted, 0.50),
			DelayP95: percentile(sorted, 0.95),
			DelayP99: percentile(sorted, 0.99),
			MeanHops: float64(s.hopSum) / float64(s.delivers),
			MaxHops:  s.maxHops,
			MaxFanIn: s.maxFanIn,
		}
		hops := make([]int, 0, len(s.hopHist))
		for h := range s.hopHist {
			hops = append(hops, h)
		}
		sort.Ints(hops)
		for _, h := range hops {
			d.HopHist = append(d.HopHist, jsonHopBucket{Hops: h, Count: s.hopHist[h]})
		}
		sum.Delivery = d
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sum)
}

func scan(path string) (*stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s := newStats()
	d := trace.NewDecoder(f)
	for {
		rec, err := d.Next()
		if err == io.EOF {
			return s, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if rec.IsSnapshot {
			s.snapshots++
			continue
		}
		s.addEvent(rec.Event)
	}
}

// sortedKinds returns the message kinds seen, ascending.
func sortedKinds(s *stats) []msg.Kind {
	kinds := make([]msg.Kind, 0, len(s.kinds))
	for k := range s.kinds {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// nt pairs a node with its event count for the busiest-node ranking.
type nt struct {
	node topology.NodeID
	n    int
}

// busiestNodes returns up to top nodes by event count, busiest first.
func busiestNodes(s *stats, top int) []nt {
	if top <= 0 {
		return nil
	}
	busy := make([]nt, 0, len(s.nodeTraffic))
	for id, n := range s.nodeTraffic {
		busy = append(busy, nt{id, n})
	}
	sort.Slice(busy, func(i, j int) bool {
		if busy[i].n != busy[j].n {
			return busy[i].n > busy[j].n
		}
		return busy[i].node < busy[j].node
	})
	if top > len(busy) {
		top = len(busy)
	}
	return busy[:top]
}

// sortedInterests returns the interest IDs with reconstructed trees,
// ascending.
func sortedInterests(s *stats) []msg.InterestID {
	iids := make([]msg.InterestID, 0, len(s.trees))
	for iid := range s.trees {
		iids = append(iids, iid)
	}
	sort.Slice(iids, func(i, j int) bool { return iids[i] < iids[j] })
	return iids
}

func report(w io.Writer, path string, s *stats, top int, edges bool) error {
	span := float64(s.lastAt-s.firstAt) / 1e9
	fmt.Fprintf(w, "== %s ==\n", path)
	fmt.Fprintf(w, "%d events over %.1f virtual seconds, %d snapshots\n",
		s.events, span, s.snapshots)
	fmt.Fprintf(w, "sends %d, receives %d, drops %d", s.sends, s.recvs, s.drops)
	if s.repairs > 0 {
		fmt.Fprintf(w, ", repairs %d", s.repairs)
	}
	fmt.Fprint(w, "\n\n")

	fmt.Fprintf(w, "%-14s %10s %10s %10s\n", "kind", "sends", "recvs", "drops")
	for _, k := range sortedKinds(s) {
		r := s.kinds[k]
		fmt.Fprintf(w, "%-14s %10d %10d %10d\n", k, r.sends, r.recvs, r.drops)
	}

	if s.delivers > 0 {
		sorted := append([]float64(nil), s.delays...)
		sort.Float64s(sorted)
		fmt.Fprintf(w, "\ndeliveries: %d samples\n", s.delivers)
		fmt.Fprintf(w, "  latency      p50 %.3fs  p95 %.3fs  p99 %.3fs\n",
			percentile(sorted, 0.50), percentile(sorted, 0.95), percentile(sorted, 0.99))
		fmt.Fprintf(w, "  tree depth   %.1f hops mean, %d max (fan-in up to %d)\n",
			float64(s.hopSum)/float64(s.delivers), s.maxHops, s.maxFanIn)
		hops := make([]int, 0, len(s.hopHist))
		for h := range s.hopHist {
			hops = append(hops, h)
		}
		sort.Ints(hops)
		for _, h := range hops {
			fmt.Fprintf(w, "  %2d hops      %10d\n", h, s.hopHist[h])
		}
	}

	if len(s.dropReasons) > 0 {
		fmt.Fprintf(w, "\ndrops by reason:\n")
		reasons := make([]trace.DropReason, 0, len(s.dropReasons))
		for r := range s.dropReasons {
			reasons = append(reasons, r)
		}
		sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
		for _, r := range reasons {
			fmt.Fprintf(w, "  %-14s %10d\n", r, s.dropReasons[r])
		}
	}

	if busy := busiestNodes(s, top); len(busy) > 0 {
		fmt.Fprintf(w, "\nbusiest %d of %d nodes (events touching the node):\n",
			len(busy), len(s.nodeTraffic))
		for _, b := range busy {
			fmt.Fprintf(w, "  node %-5d %10d\n", b.node, b.n)
		}
	}

	for _, iid := range sortedInterests(s) {
		t := s.trees[iid]
		fmt.Fprintf(w, "\ninterest %d: %d aggregation-tree edges standing at trace end\n",
			iid, len(t))
		if !edges {
			continue
		}
		list := make([]edge, 0, len(t))
		for e := range t {
			list = append(list, e)
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].from != list[j].from {
				return list[i].from < list[j].from
			}
			return list[i].to < list[j].to
		})
		for _, e := range list {
			fmt.Fprintf(w, "  %d -> %d\n", e.from, e.to)
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
