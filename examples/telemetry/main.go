// Telemetry: what does greedy aggregation actually *do* differently from
// opportunistic path selection? This example runs the same 100-node field
// under both schemes with the telemetry registry enabled and prints the
// protocol counters side by side — the set-cover invocations, truncation
// prunes, and the incremental-cost traffic that exists only on the greedy
// path, alongside the shared MAC/diffusion machinery both schemes exercise.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func main() {
	counters := []struct{ name, note string }{
		{"diffusion_exploratory_floods", "per-source exploratory rounds"},
		{"diffusion_gradient_cache_hits", "gradient refreshes (cache hit)"},
		{"diffusion_gradient_cache_misses", "new gradients set up"},
		{"diffusion_reinforce_sent", "positive reinforcements"},
		{"diffusion_inccost_sent", "incremental-cost messages (greedy only)"},
		{"diffusion_setcover_calls", "set-cover invocations at aggregation points"},
		{"diffusion_truncation_prunes", "branches pruned by negative reinforcement"},
		{"mac_data_tx", "data frames on the air"},
		{"mac_collisions", "MAC collisions"},
	}

	byScheme := map[core.Scheme][]obs.Metric{}
	for _, scheme := range []core.Scheme{core.SchemeGreedy, core.SchemeOpportunistic} {
		cfg := core.DefaultConfig()
		cfg.Seed = 7
		cfg.Nodes = 100
		cfg.Duration = 60 * time.Second
		cfg.Scheme = scheme
		cfg.Telemetry = &obs.Config{}
		out, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		byScheme[scheme] = out.Telemetry
		fmt.Printf("%-13s delivery %.2f, avg delay %v, %d kernel events\n",
			scheme, out.Metrics.DeliveryRatio,
			time.Duration(out.Metrics.AvgDelay*float64(time.Second)).Round(time.Millisecond),
			out.Kernel.Events)
	}

	fmt.Printf("\n%-34s %12s %14s\n", "counter", "greedy", "opportunistic")
	for _, c := range counters {
		g := obs.Value(byScheme[core.SchemeGreedy], c.name)
		o := obs.Value(byScheme[core.SchemeOpportunistic], c.name)
		fmt.Printf("%-34s %12.0f %14.0f   %s\n", c.name, g, o, c.note)
	}

	fmt.Println("\nThe greedy scheme pays for its cheaper trees with extra control")
	fmt.Println("traffic: incremental-cost messages advertise existing aggregation")
	fmt.Println("points so later sources can graft onto them. Opportunistic")
	fmt.Println("diffusion never sends one — each source reinforces its own")
	fmt.Println("lowest-delay path and aggregation happens only by accident.")
}
