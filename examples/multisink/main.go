// Multisink: several users subscribe to the same sensing task from
// different places (§5.4's sink-count experiment). With one corner sink the
// greedy tree shares aggressively; as sinks scatter across the field the
// per-sink trees stop overlapping and the two schemes converge — the
// paper's Figure 8 in miniature.
//
//	go run ./examples/multisink
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

func main() {
	fmt.Println("Impact of the number of sinks (350-node field, 5 corner sources)")
	fmt.Println()
	fmt.Printf("%5s %16s %16s %9s\n", "sinks", "greedy J/event", "opport. J/event", "savings")

	for _, sinks := range []int{1, 3, 5} {
		var comm [2]float64
		var ratio [2]float64
		for i, scheme := range []core.Scheme{core.SchemeGreedy, core.SchemeOpportunistic} {
			cfg := core.DefaultConfig()
			cfg.Scheme = scheme
			cfg.Nodes = 350
			cfg.Seed = 11
			cfg.Duration = 120 * time.Second
			cfg.Workload.Sinks = sinks
			out, err := core.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			comm[i] = out.Metrics.AvgCommEnergy
			ratio[i] = out.Metrics.DeliveryRatio
		}
		fmt.Printf("%5d %16.6f %16.6f %8.0f%%   (delivery %.2f vs %.2f)\n",
			sinks, comm[0], comm[1], 100*(1-comm[0]/comm[1]), ratio[0], ratio[1])
	}

	fmt.Println()
	fmt.Println("Expect the savings to shrink as sinks scatter: scattered sinks give")
	fmt.Println("the trees little chance to share paths, the same effect as random")
	fmt.Println("source placement.")
}
