// Failures: the paper's robustness experiment (§5.3). At every instant 20%
// of the relay nodes are powered off; a fresh 20% is drawn every 30 seconds
// with no settling time. Both schemes repair around the outages; at high
// density the greedy tree is smaller, so fewer failures land on it.
//
//	go run ./examples/failures
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/failure"
)

func main() {
	fmt.Println("Node-failure dynamics: 20% of relays off, re-drawn every 30s")
	fmt.Println("(150-node field, 5 corner sources, 1 sink)")
	fmt.Println()

	for _, withFailures := range []bool{false, true} {
		label := "static network"
		if withFailures {
			label = "20% failures "
		}
		for _, scheme := range []core.Scheme{core.SchemeGreedy, core.SchemeOpportunistic} {
			cfg := core.DefaultConfig()
			cfg.Scheme = scheme
			cfg.Nodes = 150
			cfg.Seed = 5
			cfg.Duration = 160 * time.Second
			if withFailures {
				fc := failure.DefaultConfig()
				cfg.Failures = &fc
			}
			out, err := core.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			m := out.Metrics
			fmt.Printf("%s  %-14s delivery %.3f  delay %.3fs  energy %.6f J/node/event\n",
				label, m.Scheme+":", m.DeliveryRatio, m.AvgDelay, m.AvgDissipatedEnergy)
		}
	}

	fmt.Println()
	fmt.Println("Failed relays force local repair: nodes whose upstream goes silent")
	fmt.Println("re-reinforce an alternate neighbor from the cached exploratory copies.")
}
