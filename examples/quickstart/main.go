// Quickstart: run one simulated sensor field under both aggregation schemes
// and compare the paper's three metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

func main() {
	fmt.Println("Greedy vs. opportunistic aggregation on one 200m x 200m field")
	fmt.Println("(150 nodes, 5 corner sources, 1 sink, perfect aggregation)")
	fmt.Println()

	for _, scheme := range []core.Scheme{core.SchemeGreedy, core.SchemeOpportunistic} {
		cfg := core.DefaultConfig()
		cfg.Scheme = scheme
		cfg.Nodes = 150
		cfg.Seed = 42
		cfg.Duration = 120 * time.Second

		out, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		m := out.Metrics
		fmt.Printf("%-14s delivery %.3f   delay %.3fs   energy %.6f J/node/event (comm %.6f)\n",
			m.Scheme+":", m.DeliveryRatio, m.AvgDelay, m.AvgDissipatedEnergy, m.AvgCommEnergy)
	}

	fmt.Println()
	fmt.Println("The greedy scheme builds a shared aggregation tree (a greedy")
	fmt.Println("incremental tree), so it transmits the same events with fewer")
	fmt.Println("radio transmissions — compare the communication energy column.")
}
