// Chaos: the fault-injection layer beyond the paper's clean §5.3 outage
// model. Four fault classes — i.i.d. link loss, a bursty Gilbert–Elliott
// channel, crash-with-amnesia reboots, and a scheduled field partition —
// each run with the protocol-invariant checker armed, reporting the
// recovery metrics (time to repair, delivery dip, availability) alongside
// the paper's three panels.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/geom"
)

func main() {
	fmt.Println("Chaos injection: loss, bursts, amnesia crashes, and a partition")
	fmt.Println("(150-node field, 5 corner sources, 1 sink, greedy aggregation)")
	fmt.Println()

	burst := chaos.DefaultBurstConfig()
	scenarios := []struct {
		label string
		cfg   chaos.Config
	}{
		{"clean        ", chaos.Config{CheckInvariants: true}},
		{"10% loss     ", chaos.Config{
			Loss:            chaos.LossConfig{Drop: 0.10},
			CheckInvariants: true,
		}},
		{"bursty links ", chaos.Config{
			Loss:            chaos.LossConfig{Burst: &burst},
			CheckInvariants: true,
		}},
		{"amnesia 10s  ", chaos.Config{
			Amnesia:         chaos.AmnesiaConfig{MeanInterval: 10 * time.Second, Downtime: 2 * time.Second},
			CheckInvariants: true,
		}},
		{"partition    ", chaos.Config{
			// Cut the field diagonally for the middle third of the run,
			// separating the corner workload from the opposite corner.
			Partitions: []chaos.Partition{{
				Start: 55 * time.Second, End: 105 * time.Second,
				A: geom.Point{X: -10, Y: 210}, B: geom.Point{X: 210, Y: -10},
			}},
			CheckInvariants: true,
		}},
	}

	for _, sc := range scenarios {
		cfg := core.DefaultConfig()
		cfg.Scheme = core.SchemeGreedy
		cfg.Nodes = 150
		cfg.Seed = 5
		cfg.Duration = 160 * time.Second
		cc := sc.cfg
		cfg.Chaos = &cc
		out, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		m := out.Metrics
		rep := out.Chaos
		fmt.Printf("%s delivery %.3f  delay %.3fs  losses %6d  crashes %2d  violations %d\n",
			sc.label, m.DeliveryRatio, m.AvgDelay, rep.LinkLoss, rep.Crashes, rep.ViolationCount)
		if rec := rep.Recovery; rec != nil && rec.Faults > 0 {
			fmt.Printf("              %d faults, %d repaired, mean repair %v, dip %.2f, availability %.3f\n",
				rec.Faults, rec.Repaired, rec.MeanTimeToRepair.Round(time.Millisecond),
				rec.MeanDipDepth, rec.Availability)
		}
	}

	fmt.Println()
	fmt.Println("Loss and bursts tax the MAC but rarely the tree; a crash with amnesia")
	fmt.Println("forces the node to re-learn its gradients from the next flood, and a")
	fmt.Println("partition stops delivery outright until the window closes. The checker")
	fmt.Println("verifies the protocol's invariants hold through all of it: no off-node")
	fmt.Println("traffic, no duplicate sink deliveries, monotone incremental costs, and")
	fmt.Println("no persistent gradient loops.")
}
