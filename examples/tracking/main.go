// Tracking: the paper's motivating scenario — a wilderness refuge
// instrumented with a dense sensor field, a ranger station (sink) in one
// corner, and a herd of animals detected by sensors in the opposite corner.
//
// The example runs the greedy aggregation instantiation on a dense field,
// traces the reinforcement and incremental-cost messages that build the
// greedy incremental tree, and reports how much communication the shared
// tree saves over the opportunistic baseline.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/trace"
)

func main() {
	fmt.Println("Animal tracking in a wilderness refuge")
	fmt.Println("  350 sensor nodes, radio density ~43 neighbors")
	fmt.Println("  5 sensors near the herd (bottom-left 80m), ranger station top-right")
	fmt.Println()

	base := core.DefaultConfig()
	base.Nodes = 350
	base.Seed = 7
	base.Duration = 160 * time.Second

	// Trace the tree-building control traffic of the greedy run.
	rec := trace.NewRecorder(64)
	rec.SetFilter(trace.And(
		trace.KindFilter(msg.KindReinforce, msg.KindIncCost),
		func(e trace.Event) bool { return e.Op == trace.OpSend },
	))

	results := map[core.Scheme]core.Output{}
	for _, scheme := range []core.Scheme{core.SchemeGreedy, core.SchemeOpportunistic} {
		cfg := base
		cfg.Scheme = scheme
		if scheme == core.SchemeGreedy {
			cfg.Tracer = rec
		}
		out, err := core.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		results[scheme] = out
		m := out.Metrics
		fmt.Printf("%-14s tracked %d/%d sightings, delay %.2fs, %d data transmissions\n",
			m.Scheme+":", m.DeliveredEvents, m.GeneratedEvents, m.AvgDelay,
			out.Sent[msg.KindData])
	}

	g := results[core.SchemeGreedy].Metrics
	o := results[core.SchemeOpportunistic].Metrics
	if o.AvgCommEnergy > 0 {
		fmt.Printf("\ncommunication energy per tracked sighting: greedy %.6f vs opportunistic %.6f J/node (%.0f%% savings)\n",
			g.AvgCommEnergy, o.AvgCommEnergy, 100*(1-g.AvgCommEnergy/o.AvgCommEnergy))
	}

	fmt.Println("\nlast tree-building control messages of the greedy run")
	fmt.Println("(inccost = a source advertising its cost to join the existing tree,")
	fmt.Println(" reinforce = the hop-by-hop construction of the shared tree):")
	events := rec.Events()
	if len(events) > 12 {
		events = events[len(events)-12:]
	}
	for _, e := range events {
		fmt.Println(" ", e)
	}
}
