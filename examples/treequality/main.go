// Treequality: how good is the greedy incremental tree, really? This
// example builds the three trees of the paper's §1 argument on one field —
// the shortest-path tree (SPT, what opportunistic path selection
// approximates), the greedy incremental tree (GIT, what greedy aggregation
// constructs), and the exact optimal Steiner tree (Dreyfus–Wagner DP) —
// and draws the GIT on the field.
//
//	go run ./examples/treequality
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/datacentric"
	"repro/internal/geom"
	"repro/internal/plot"
	"repro/internal/topology"
)

func main() {
	rng := rand.New(rand.NewSource(4))
	field, err := topology.Generate(topology.Config{
		Area: geom.Square(0, 0, 200), Nodes: 250, Range: 40,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's placement: sink top-right, five sources bottom-left.
	sinkPool := field.NodesIn(geom.Square(164, 164, 36))
	if len(sinkPool) == 0 {
		log.Fatal("no node in the sink corner; try another seed")
	}
	sink := sinkPool[0]
	sources, err := datacentric.CornerSources(field, sink, 5, 80, rng)
	if err != nil {
		log.Fatal(err)
	}

	spt, err := datacentric.SPT(field, sink, sources)
	if err != nil {
		log.Fatal(err)
	}
	git, err := datacentric.GIT(field, sink, sources)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := datacentric.SteinerOpt(field, sink, sources)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tree cost in transmissions per event round (250 nodes, density %.1f):\n\n", field.MeanDegree())
	fmt.Printf("  shortest-path tree (SPT)       %3d\n", spt.Transmissions())
	fmt.Printf("  greedy incremental tree (GIT)  %3d   (%.0f%% below SPT)\n",
		git.Transmissions(), 100*(1-float64(git.Transmissions())/float64(spt.Transmissions())))
	fmt.Printf("  optimal Steiner tree           %3d   (GIT is %.2fx optimal)\n\n",
		opt, float64(git.Transmissions())/float64(opt))

	for name, tree := range map[string]datacentric.Tree{"GIT": git, "SPT": spt} {
		m := plot.FieldMap{
			Title: name + " on the field:",
			MinX:  0, MinY: 0, MaxX: 200, MaxY: 200,
			Legend: map[rune]string{'S': "sink", 'o': "source", '*': "tree node", '.': "idle"},
			Width:  60, Height: 20,
		}
		isSource := map[topology.NodeID]bool{}
		for _, s := range sources {
			isSource[s] = true
		}
		for i := 0; i < field.Len(); i++ {
			id := topology.NodeID(i)
			p := field.Position(id)
			nd := plot.FieldNode{X: p.X, Y: p.Y, Mark: '.'}
			switch {
			case id == sink:
				nd.Mark = 'S'
			case isSource[id]:
				nd.Mark = 'o'
			case tree.Contains(id):
				nd.Mark = '*'
			}
			m.Nodes = append(m.Nodes, nd)
		}
		if err := m.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("Note how the GIT funnels all five sources onto one trunk early,")
	fmt.Println("while the SPT's paths run separately until they happen to meet.")
}
