package repro

// Determinism goldens: the simulator's contract is that a (seed,
// configuration) pair fully determines a run. The files under testdata/
// were generated before the zero-alloc kernel/MAC rewrite, so these tests
// double as the regression proof that pooling, copy-on-write messages, and
// queue compaction changed only performance, never protocol outcomes.
//
// Regenerate (only when an intentional behavior change is made) with:
//
//	go test -run Golden -update .

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite determinism golden files")

func fig5QuickCSV(t *testing.T) []byte {
	t.Helper()
	opts := harness.QuickOptions()
	opts.Fields = 1
	opts.Duration = 20 * time.Second
	tbl, err := harness.Fig5(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from golden %s:\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestFig5QuickGoldenCSV asserts the quick-preset Figure 5 CSV is
// byte-identical to the pre-rewrite capture at the same seed.
func TestFig5QuickGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick-preset sweep; skipped with -short")
	}
	compareGolden(t, filepath.Join("testdata", "fig5_quick.golden.csv"), fig5QuickCSV(t))
}

// TestFig5QuickRepeatable asserts two sweeps at the same seed are
// byte-identical — determinism within a single binary, independent of the
// committed golden.
func TestFig5QuickRepeatable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick-preset sweep twice; skipped with -short")
	}
	a, b := fig5QuickCSV(t), fig5QuickCSV(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("identical seeds produced different CSVs:\n%s\nvs\n%s", a, b)
	}
}

// mobilityQuickCSV runs the one-field quick mobility grid and returns its
// CSV — every dynamics scenario (walk, waypoint, churn) with repair off and
// on, so the golden pins mover advancement, incremental neighbor rebuilds,
// and churn scheduling alongside the protocol outcomes.
func mobilityQuickCSV(t *testing.T) []byte {
	t.Helper()
	opts := harness.QuickOptions()
	opts.Fields = 1
	opts.Duration = 20 * time.Second
	tbl, err := harness.Mobility(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMobilityQuickGoldenCSV asserts the quick mobility-grid CSV is
// byte-identical to the committed capture at the same seed — the dynamics
// counterpart of TestFig5QuickGoldenCSV.
func TestMobilityQuickGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick mobility grid; skipped with -short")
	}
	compareGolden(t, filepath.Join("testdata", "mobility_quick.golden.csv"), mobilityQuickCSV(t))
}

// telemetryLines runs one instrumented quick simulation and renders every
// registry metric as a stable line. Wall-clock gauges (sim_wall_*) are
// excluded — they measure the host, not the model — as is
// sim_queue_highwater, which reflects event-queue memory footprint and is
// intentionally lowered by cancelled-event compaction.
func telemetryLines(t *testing.T) []byte {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Nodes = 50
	cfg.Seed = 7
	cfg.Duration = 20 * time.Second
	cfg.Telemetry = &obs.Config{}
	out, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, m := range out.Telemetry {
		if strings.HasPrefix(m.Name, "sim_wall") || m.Name == "sim_queue_highwater" {
			continue
		}
		fmt.Fprintf(&b, "%s{%s} %s value=%g max=%g count=%d sum=%g\n",
			m.Name, m.Labels, m.Kind, m.Value, m.Max, m.Count, m.Sum)
		for _, bk := range m.Buckets {
			fmt.Fprintf(&b, "  bucket %g: %d\n", bk.Bound, bk.Count)
		}
	}
	return []byte(b.String())
}

// TestTelemetryCountersGolden asserts the full instrumented counter set of a
// seeded run matches the pre-rewrite capture.
func TestTelemetryCountersGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("instrumented run; skipped with -short")
	}
	compareGolden(t, filepath.Join("testdata", "telemetry_quick.golden.txt"), telemetryLines(t))
}

// ndjsonTrace runs one mid-size instrumented simulation with an NDJSON
// tracer attached and returns the raw trace bytes. The paper's middle
// density over a full minute drives every hot path the ordered-table layer
// rewrote: exploratory floods and gradient reinforcement, truncation
// (negative reinforcement), incremental-cost fan-out, and periodic
// snapshots walking the tables in iteration order.
func ndjsonTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	nd := trace.NewNDJSON(&buf)
	cfg := core.DefaultConfig()
	cfg.Seed = 11
	cfg.Duration = 60 * time.Second
	cfg.Tracer = nd
	cfg.Telemetry = &obs.Config{SnapshotEvery: 15 * time.Second}
	if _, err := core.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if err := nd.Err(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty trace")
	}
	return buf.Bytes()
}

// TestNDJSONTraceRepeatable asserts that two identically-seeded mid-size
// runs emit byte-identical NDJSON traces — the strictest determinism check
// we have, since the trace serializes every protocol send, receive, drop,
// and snapshot in order.
func TestNDJSONTraceRepeatable(t *testing.T) {
	if testing.Short() {
		t.Skip("two mid-size instrumented runs; skipped with -short")
	}
	a, b := ndjsonTrace(t), ndjsonTrace(t)
	if !bytes.Equal(a, b) {
		al, bl := strings.Split(string(a), "\n"), strings.Split(string(b), "\n")
		for i := range al {
			if i >= len(bl) || al[i] != bl[i] {
				t.Fatalf("traces diverge at line %d:\n run A: %s\n run B: %s", i+1, al[i], bl[i])
			}
		}
		t.Fatalf("trace lengths differ: %d vs %d bytes", len(a), len(b))
	}
}

// mobileNDJSONTrace runs one instrumented simulation under random-waypoint
// mobility plus population churn and returns the raw NDJSON trace bytes.
// Movement epochs, incremental neighbor rebuilds, cold joins, and permanent
// departures all draw from the kernel RNG, so a byte-identical rerun proves
// the dynamics layer kept the (seed, config) determinism contract.
func mobileNDJSONTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	nd := trace.NewNDJSON(&buf)
	cfg := core.DefaultConfig()
	cfg.Seed = 13
	cfg.Duration = 40 * time.Second
	cfg.Mobility = topology.DefaultMobilityConfig(topology.MobilityWaypoint)
	cfg.Churn = failure.ChurnConfig{
		JoinFraction:  0.15,
		JoinWindow:    15 * time.Second,
		LeaveInterval: 10 * time.Second,
	}
	cfg.Tracer = nd
	cfg.Telemetry = &obs.Config{SnapshotEvery: 15 * time.Second}
	out, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Err(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty trace")
	}
	if out.Mobility == nil || out.Mobility.LinkChanges == 0 {
		t.Fatal("mobile run produced no adjacency changes; trace would not exercise the dynamics layer")
	}
	return buf.Bytes()
}

// TestMobileNDJSONTraceRepeatable asserts two identically-seeded mobile,
// churning runs emit byte-identical NDJSON traces — the dynamics
// counterpart of TestNDJSONTraceRepeatable.
func TestMobileNDJSONTraceRepeatable(t *testing.T) {
	if testing.Short() {
		t.Skip("two instrumented mobile runs; skipped with -short")
	}
	a, b := mobileNDJSONTrace(t), mobileNDJSONTrace(t)
	if !bytes.Equal(a, b) {
		al, bl := strings.Split(string(a), "\n"), strings.Split(string(b), "\n")
		for i := range al {
			if i >= len(bl) || al[i] != bl[i] {
				t.Fatalf("mobile traces diverge at line %d:\n run A: %s\n run B: %s", i+1, al[i], bl[i])
			}
		}
		t.Fatalf("trace lengths differ: %d vs %d bytes", len(a), len(b))
	}
}
