package repro

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/trace"
)

// integrationCfg is a small-but-real configuration exercising every module.
func integrationCfg(scheme core.Scheme, seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Scheme = scheme
	cfg.Nodes = 100
	cfg.Seed = seed
	cfg.Duration = 60 * time.Second
	return cfg
}

// TestPairedFieldsAcrossSchemes: the experiment design compares the two
// schemes on identical fields — same seed must give the same placement and
// the same workload assignment regardless of scheme.
func TestPairedFieldsAcrossSchemes(t *testing.T) {
	g, err := core.Run(integrationCfg(core.SchemeGreedy, 5))
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.Run(integrationCfg(core.SchemeOpportunistic, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Assignment.Sources) != len(o.Assignment.Sources) {
		t.Fatal("source counts differ across schemes")
	}
	for i := range g.Assignment.Sources {
		if g.Assignment.Sources[i] != o.Assignment.Sources[i] {
			t.Fatalf("source %d differs: %d vs %d (field not paired)",
				i, g.Assignment.Sources[i], o.Assignment.Sources[i])
		}
	}
	if g.Assignment.Sinks[0] != o.Assignment.Sinks[0] {
		t.Fatal("sink placement differs across schemes")
	}
	if g.Density != o.Density {
		t.Fatal("field density differs across schemes")
	}
}

// TestConservationLaws checks cross-module accounting invariants on both
// schemes.
func TestConservationLaws(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SchemeGreedy, core.SchemeOpportunistic} {
		out, err := core.Run(integrationCfg(scheme, 9))
		if err != nil {
			t.Fatal(err)
		}
		m := out.Metrics
		if m.DeliveredEvents > m.GeneratedEvents {
			t.Errorf("%v: delivered %d > generated %d with one sink",
				scheme, m.DeliveredEvents, m.GeneratedEvents)
		}
		if m.DeliveryRatio < 0 || m.DeliveryRatio > 1 {
			t.Errorf("%v: ratio %v out of [0,1]", scheme, m.DeliveryRatio)
		}
		if m.CommEnergy > m.TotalEnergy {
			t.Errorf("%v: comm energy %v exceeds total %v", scheme, m.CommEnergy, m.TotalEnergy)
		}
		if m.AvgCommEnergy > m.AvgDissipatedEnergy {
			t.Errorf("%v: per-event comm energy exceeds total", scheme)
		}
		// The MAC never invents frames: every data frame on the air is a
		// protocol send or one of its retransmissions.
		var sends int
		for _, n := range out.Sent {
			sends += n
		}
		if out.MAC.DataTx > sends+out.MAC.Retries {
			t.Errorf("%v: MAC put %d data frames on air but the protocol sent %d (+%d retries)",
				scheme, out.MAC.DataTx, sends, out.MAC.Retries)
		}
		// Traffic concentration is well-formed.
		c := m.Concentration
		if c.MaxNodeJ < c.MeanNodeJ || (c.MeanNodeJ > 0 && c.PeakToMean < 1) {
			t.Errorf("%v: malformed concentration %+v", scheme, c)
		}
	}
}

// TestGreedyConcentratesTraffic: the shared tree works its trunk harder —
// §3's traffic-concentration trade-off must be visible in the metrics.
func TestGreedyConcentratesTraffic(t *testing.T) {
	var peak [2]float64
	for i, scheme := range []core.Scheme{core.SchemeGreedy, core.SchemeOpportunistic} {
		cfg := integrationCfg(scheme, 21)
		cfg.Nodes = 250
		out, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		peak[i] = out.Metrics.Concentration.PeakToMean
		if peak[i] <= 1 {
			t.Fatalf("%v: peak-to-mean %v <= 1", scheme, peak[i])
		}
	}
	t.Logf("peak-to-mean comm energy: greedy %.1f, opportunistic %.1f", peak[0], peak[1])
}

// TestTraceMatchesSendCounters: the tracer must see exactly the sends the
// runtime counts.
func TestTraceMatchesSendCounters(t *testing.T) {
	rec := trace.NewRecorder(1 << 20)
	rec.SetFilter(func(e trace.Event) bool { return e.Op == trace.OpSend })
	cfg := integrationCfg(core.SchemeGreedy, 3)
	cfg.Nodes = 60
	cfg.Duration = 30 * time.Second
	cfg.Tracer = rec
	out, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := rec.CountByKind()
	for k, want := range out.Sent {
		if counts[k] != want {
			t.Errorf("trace saw %d %v sends, runtime counted %d", counts[k], k, want)
		}
	}
}

// TestSchemesShareSubstrateTraffic: interest flooding is sink-driven and
// identical across schemes on the same field; only the scheme-specific
// message kinds may differ.
func TestSchemesShareSubstrateTraffic(t *testing.T) {
	g, err := core.Run(integrationCfg(core.SchemeGreedy, 5))
	if err != nil {
		t.Fatal(err)
	}
	o, err := core.Run(integrationCfg(core.SchemeOpportunistic, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Interest floods: one broadcast per node per round plus the sink's own;
	// both schemes must be within a whisker (losses differ run to run).
	gi, oi := g.Sent[msg.KindInterest], o.Sent[msg.KindInterest]
	if diff(gi, oi) > gi/5 {
		t.Errorf("interest traffic diverges: %d vs %d", gi, oi)
	}
	// Only the greedy scheme emits incremental cost messages.
	if o.Sent[msg.KindIncCost] != 0 {
		t.Errorf("opportunistic run sent %d inccost messages", o.Sent[msg.KindIncCost])
	}
	if g.Sent[msg.KindIncCost] == 0 {
		t.Error("greedy run sent no inccost messages")
	}
	// The headline mechanism: greedy needs fewer data transmissions.
	if g.Sent[msg.KindData] >= o.Sent[msg.KindData] {
		t.Errorf("greedy sent %d data messages, opportunistic %d — no sharing",
			g.Sent[msg.KindData], o.Sent[msg.KindData])
	}
}

func diff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// TestExamplesCompile keeps every example buildable: each is a main package
// outside the test dependency graph, so only an explicit build catches rot.
func TestExamplesCompile(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles all example binaries")
	}
	dirs, err := filepath.Glob("examples/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no examples found")
	}
	for _, dir := range dirs {
		out, err := exec.Command("go", "build", "-o", os.DevNull, "./"+dir).CombinedOutput()
		if err != nil {
			t.Errorf("%s does not build: %v\n%s", dir, err, out)
		}
	}
}
